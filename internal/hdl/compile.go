package hdl

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the compiled fast path's control plane (DESIGN.md §18),
// after CCSS: at elaboration the structural combinational logic — gates
// declared with Simulator.Gate — is levelized into a topologically sorted
// evaluation plan, and the connected gate cones become purity-guarded
// regions. While every signal of a region is two-state pure, its gates
// evaluate bit-parallel on packed words (bitpack.go); the moment an
// X/Z/weak/uninitialized value commits into the region it demotes to the
// full IEEE-1164 nine-value event kernel, and it promotes back when the
// last such value drains. Sequential logic (clocked processes: Reg,
// Counter, FIFO, the DUT port machines) needs no plan — it is already
// synchronized at clock edges, and the packed data plane accelerates its
// signal traffic transparently.
//
// Evaluation stays delta-exact: a dirty gate runs in the process phase of
// the delta in which an input changed, and its output assignment matures
// one delta later, exactly as the equivalent sensitivity-list process
// would under the event kernel. The plan changes how a gate evaluates
// (packed word ops vs nine-value vectors) and how it is located (dirty
// set drained in level order vs generic trigger list) — never when.
// That is what makes waveforms, metrics, coverage, trace and profile
// byte-identical across the two kernels.

// GateOp is a structural combinational operator.
type GateOp uint8

// The gate operators. Buf and Not take exactly one input; the others take
// two or more and fold left, matching the nine-value LV operations.
const (
	GateBuf GateOp = iota
	GateNot
	GateAnd
	GateOr
	GateXor
	GateNand
	GateNor
	GateXnor
)

var gateOpNames = [...]string{"buf", "not", "and", "or", "xor", "nand", "nor", "xnor"}

// String returns the operator mnemonic.
func (op GateOp) String() string {
	if int(op) < len(gateOpNames) {
		return gateOpNames[op]
	}
	return fmt.Sprintf("gateop(%d)", int(op))
}

func (op GateOp) inverting() bool {
	return op == GateNot || op == GateNand || op == GateNor || op == GateXnor
}

// Gate is one structural combinational operator instance: out <= op(ins)
// after one delta. In event-kernel mode it is an ordinary process on the
// input sensitivity list; in compiled mode it is evaluated from the
// levelized plan, bit-parallel while its region is pure.
type Gate struct {
	name   string
	op     GateOp
	out    *Signal
	ins    []*Signal
	drv    *Driver
	proc   *Process
	mask   uint64
	level  int
	region *Region
	dirty  bool
}

// Name returns the gate instance name.
func (gt *Gate) Name() string { return gt.name }

// Op returns the gate operator.
func (gt *Gate) Op() GateOp { return gt.op }

// Out returns the driven output signal.
func (gt *Gate) Out() *Signal { return gt.out }

// Level returns the gate's topological level in the compiled plan (0 =
// fed only by non-gate signals). Valid after Compile.
func (gt *Gate) Level() int { return gt.level }

// Region returns the purity region the gate belongs to. Valid after
// Compile.
func (gt *Gate) Region() *Region { return gt.region }

// Gate declares a structural combinational gate driving out from ins.
// The output must not have any other driver (the gate owns it), widths
// must match, and the width must fit the packed representation (≤ 64).
// Gates must be declared before Compile.
func (s *Simulator) Gate(name string, op GateOp, out *Signal, ins ...*Signal) *Gate {
	if s.fast {
		panic(fmt.Sprintf("hdl: gate %q declared after Compile", name))
	}
	switch {
	case op == GateBuf || op == GateNot:
		if len(ins) != 1 {
			panic(fmt.Sprintf("hdl: gate %q: %v takes exactly one input, got %d", name, op, len(ins)))
		}
	default:
		if len(ins) < 2 {
			panic(fmt.Sprintf("hdl: gate %q: %v takes at least two inputs, got %d", name, op, len(ins)))
		}
	}
	if out.width > 64 {
		panic(fmt.Sprintf("hdl: gate %q: output %q wider than 64 bits", name, out.name))
	}
	if len(out.drivers) != 0 {
		panic(fmt.Sprintf("hdl: gate %q: output %q already has a driver", name, out.name))
	}
	for _, in := range ins {
		if in.width != out.width {
			panic(fmt.Sprintf("hdl: gate %q: input %q width %d vs output width %d", name, in.name, in.width, out.width))
		}
	}
	gt := &Gate{name: name, op: op, out: out, ins: ins, mask: packMask(out.width)}
	gt.drv = out.Driver("gate:" + name)
	gt.proc = s.Process(name, gt.run, ins...)
	gt.proc.gate = gt
	s.gates = append(s.gates, gt)
	return gt
}

// run evaluates the gate: bit-parallel on packed words while the region is
// pure in compiled mode, per-bit nine-value otherwise.
func (gt *Gate) run() {
	s := gt.out.sim
	if s.fast && gt.region.impure == 0 {
		// Every signal of the region — all inputs included — is two-state
		// pure, so the packed mirrors are authoritative.
		acc := gt.ins[0].pval
		switch gt.op {
		case GateAnd, GateNand:
			for _, in := range gt.ins[1:] {
				acc &= in.pval
			}
		case GateOr, GateNor:
			for _, in := range gt.ins[1:] {
				acc |= in.pval
			}
		case GateXor, GateXnor:
			for _, in := range gt.ins[1:] {
				acc ^= in.pval
			}
		}
		if gt.op.inverting() {
			acc = ^acc
		}
		gt.drv.SetUint(acc & gt.mask)
		return
	}
	gt.drv.Set(gt.evalClassic())
}

// evalClassic computes the gate function in the nine-value domain with X
// propagation, folding left like the LV operations.
func (gt *Gate) evalClassic() LV {
	out := gt.ins[0].Val().Clone()
	for _, in := range gt.ins[1:] {
		v := in.Val()
		for i := range out {
			switch gt.op {
			case GateAnd, GateNand:
				out[i] = out[i].And(v[i])
			case GateOr, GateNor:
				out[i] = out[i].Or(v[i])
			case GateXor, GateXnor:
				out[i] = out[i].Xor(v[i])
			}
		}
	}
	if gt.op.inverting() {
		for i := range out {
			out[i] = out[i].Not()
		}
	}
	return out
}

// Region is a connected component of the gate graph with a purity guard:
// impure counts member signals currently holding any non-two-state bit.
// While impure is zero the region's gates evaluate bit-parallel; the
// commit that brings an X/Z/weak value in demotes the region within the
// same delta cycle, and the commit that drains the last one promotes it
// back.
type Region struct {
	id         int
	signals    int
	impure     int
	demotions  uint64
	promotions uint64
}

// ID returns the region's index in the plan.
func (r *Region) ID() int { return r.id }

// Signals returns how many signals belong to the region.
func (r *Region) Signals() int { return r.signals }

// Demoted reports whether the region is currently evaluating on the
// nine-value event kernel.
func (r *Region) Demoted() bool { return r.impure > 0 }

// Demotions returns how many times the region left the bit-parallel path.
func (r *Region) Demotions() uint64 { return r.demotions }

// Promotions returns how many times the region re-entered the
// bit-parallel path after draining its impure values.
func (r *Region) Promotions() uint64 { return r.promotions }

// note records one member signal crossing the two-state boundary.
func (r *Region) note(pure bool) {
	if pure {
		r.impure--
		if r.impure == 0 {
			r.promotions++
		}
	} else {
		if r.impure == 0 {
			r.demotions++
		}
		r.impure++
	}
}

// Plan is the compiled evaluation plan: every gate, levelized, with its
// purity regions.
type Plan struct {
	gates   []*Gate
	levels  [][]*Gate
	dirty   [][]*Gate // per-level dirty lists, drained each delta
	regions []*Region
}

// Gates returns the number of compiled gates.
func (pl *Plan) Gates() int { return len(pl.gates) }

// Depth returns the number of topological levels.
func (pl *Plan) Depth() int { return len(pl.levels) }

// Regions returns the purity regions.
func (pl *Plan) Regions() []*Region { return pl.regions }

// String summarizes the plan for diagnostics.
func (pl *Plan) String() string {
	demoted := 0
	for _, r := range pl.regions {
		if r.Demoted() {
			demoted++
		}
	}
	return fmt.Sprintf("plan{gates=%d levels=%d regions=%d demoted=%d}",
		len(pl.gates), len(pl.levels), len(pl.regions), demoted)
}

// runDirty evaluates the dirty gates of the current delta in level order,
// with the same run accounting the generic process phase applies. A gate
// evaluation only schedules transactions (commits happen next delta), so
// no new gates become dirty while draining.
func (pl *Plan) runDirty(s *Simulator) {
	for li := range pl.dirty {
		lvl := pl.dirty[li]
		for _, gt := range lvl {
			gt.dirty = false
			p := gt.proc
			p.triggered = false
			p.runs++
			s.procRuns++
			if pr := s.prof; pr != nil {
				pr.procRuns[p.id]++
				if s.deltasAtNow > 0 {
					pr.procDelta[p.id]++
				}
			}
			gt.run()
		}
		if len(lvl) > 0 {
			pl.dirty[li] = lvl[:0]
		}
	}
	s.ndirty = 0
}

// Compiled reports whether the compiled fast path is active.
func (s *Simulator) Compiled() bool { return s.fast }

// CompiledPlan returns the active plan, or nil before Compile.
func (s *Simulator) CompiledPlan() *Plan { return s.plan }

// Compile levelizes the declared gates into an evaluation plan, forms the
// purity regions, seeds every signal's packed mirror from its current
// value, and switches the simulator onto the compiled data plane. It is
// the elaboration boundary: call it after the design is built and before
// (or between) Steps. Compiling twice returns the same plan; a
// combinational cycle among gates is an error.
func (s *Simulator) Compile() (*Plan, error) {
	if s.plan != nil {
		return s.plan, nil
	}
	pl := &Plan{gates: s.gates}

	// Levelize: level(g) = 1 + max level over gate-driven inputs.
	prod := make(map[*Signal]*Gate, len(s.gates))
	for _, gt := range s.gates {
		prod[gt.out] = gt
	}
	cons := make(map[*Gate][]*Gate)
	indeg := make(map[*Gate]int, len(s.gates))
	for _, gt := range s.gates {
		indeg[gt] = 0
	}
	for _, gt := range s.gates {
		for _, in := range gt.ins {
			if p := prod[in]; p != nil {
				cons[p] = append(cons[p], gt)
				indeg[gt]++
			}
		}
	}
	queue := make([]*Gate, 0, len(s.gates))
	for _, gt := range s.gates { // creation order keeps the plan deterministic
		if indeg[gt] == 0 {
			queue = append(queue, gt)
		}
	}
	depth, done := 0, 0
	for len(queue) > 0 {
		gt := queue[0]
		queue = queue[1:]
		done++
		if gt.level+1 > depth {
			depth = gt.level + 1
		}
		for _, c := range cons[gt] {
			if gt.level+1 > c.level {
				c.level = gt.level + 1
			}
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if done < len(s.gates) {
		var cyc []string
		for _, gt := range s.gates {
			if indeg[gt] > 0 {
				cyc = append(cyc, gt.name)
			}
		}
		sort.Strings(cyc)
		return nil, fmt.Errorf("hdl: combinational cycle through gates: %s", strings.Join(cyc, ", "))
	}
	pl.levels = make([][]*Gate, depth)
	pl.dirty = make([][]*Gate, depth)
	for _, gt := range s.gates {
		pl.levels[gt.level] = append(pl.levels[gt.level], gt)
	}

	// Regions: connected components of the gate graph over shared signals.
	parent := make(map[*Signal]*Signal)
	var find func(*Signal) *Signal
	find = func(g *Signal) *Signal {
		p, ok := parent[g]
		if !ok || p == g {
			parent[g] = g
			return g
		}
		root := find(p)
		parent[g] = root
		return root
	}
	union := func(a, b *Signal) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, gt := range s.gates {
		for _, in := range gt.ins {
			union(in, gt.out)
		}
	}
	roots := make(map[*Signal]*Region)
	for _, gt := range s.gates { // creation order → deterministic region ids
		members := append([]*Signal{gt.out}, gt.ins...)
		for _, m := range members {
			root := find(m)
			r := roots[root]
			if r == nil {
				r = &Region{id: len(pl.regions)}
				roots[root] = r
				pl.regions = append(pl.regions, r)
			}
			if m.region == nil {
				m.region = r
				r.signals++
			}
		}
		gt.region = gt.out.region
	}

	// Rewire gate sensitivity from the generic trigger list to the dirty
	// set: commits mark gates dirty directly, and the plan drains them in
	// level order.
	for _, gt := range s.gates {
		for _, in := range gt.ins {
			live := in.watchers[:0]
			for _, w := range in.watchers {
				if w != gt.proc {
					live = append(live, w)
				}
			}
			for i := len(live); i < len(in.watchers); i++ {
				in.watchers[i] = nil
			}
			in.watchers = live
			in.gwatch = append(in.gwatch, gt)
		}
	}

	// Seed the packed mirrors and count region impurity from the current
	// values, so the guard state is exact from the first compiled delta.
	for _, g := range s.signals {
		g.initMirror()
		if g.region != nil && !g.pknown {
			g.region.impure++
		}
	}
	for _, r := range pl.regions {
		if r.impure > 0 {
			r.demotions++
		}
	}

	s.plan = pl
	s.fast = true

	// Classify every driver's current contribution so word-level
	// multi-driver resolution is exact from the first compiled delta.
	for _, g := range s.signals {
		for _, d := range g.drivers {
			d.classify()
		}
	}

	// Migrate pending elaboration triggers of gate processes into the
	// dirty set; their initial run now happens level-ordered.
	if len(s.runnable) > 0 {
		live := s.runnable[:0]
		for _, p := range s.runnable {
			if p.gate != nil {
				p.triggered = false
				s.markDirty(p.gate)
			} else {
				live = append(live, p)
			}
		}
		for i := len(live); i < len(s.runnable); i++ {
			s.runnable[i] = nil
		}
		s.runnable = live
	}
	return pl, nil
}

// MustCompile is Compile for rigs that treat a cycle as fatal.
func (s *Simulator) MustCompile() *Plan {
	pl, err := s.Compile()
	if err != nil {
		panic(err)
	}
	return pl
}
