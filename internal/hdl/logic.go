// Package hdl is an event-driven hardware simulator with VHDL semantics.
// It stands in for the Synopsys VHDL System Simulator (VSS) of the paper:
// IEEE-1164 nine-valued logic, resolved signals with multiple drivers,
// delta cycles, processes with sensitivity lists, and inertial/transport
// delay. The co-simulation entity of package cosim instantiates its
// bit-level side inside this simulator, exactly as the paper instantiates
// a C-language co-simulation entity inside VSS.
package hdl

import (
	"fmt"
	"strings"
)

// Logic is one IEEE-1164 std_logic value.
type Logic byte

// The nine std_logic values.
const (
	U  Logic = iota // uninitialized
	X               // forcing unknown
	L0              // forcing 0
	L1              // forcing 1
	Z               // high impedance
	W               // weak unknown
	WL              // weak 0
	WH              // weak 1
	DC              // don't care
)

var logicNames = [9]byte{'U', 'X', '0', '1', 'Z', 'W', 'L', 'H', '-'}

// String returns the VHDL character literal for the value.
func (l Logic) String() string {
	if int(l) < len(logicNames) {
		return string(logicNames[l])
	}
	return "?"
}

// ParseLogic converts a VHDL character literal to a Logic value.
func ParseLogic(c byte) (Logic, error) {
	for i, n := range logicNames {
		if n == c || (c >= 'a' && c <= 'z' && n == c-'a'+'A') {
			return Logic(i), nil
		}
	}
	return U, fmt.Errorf("hdl: invalid std_logic literal %q", string(c))
}

// resolutionTable is the IEEE-1164 resolution function for two drivers.
var resolutionTable = [9][9]Logic{
	//         U  X  0  1  Z  W  L  H  -
	/* U */ {U, U, U, U, U, U, U, U, U},
	/* X */ {U, X, X, X, X, X, X, X, X},
	/* 0 */ {U, X, L0, X, L0, L0, L0, L0, X},
	/* 1 */ {U, X, X, L1, L1, L1, L1, L1, X},
	/* Z */ {U, X, L0, L1, Z, W, WL, WH, X},
	/* W */ {U, X, L0, L1, W, W, W, W, X},
	/* L */ {U, X, L0, L1, WL, W, WL, W, X},
	/* H */ {U, X, L0, L1, WH, W, W, WH, X},
	/* - */ {U, X, X, X, X, X, X, X, X},
}

// Resolve combines two driver contributions per IEEE 1164.
func Resolve(a, b Logic) Logic { return resolutionTable[a][b] }

// to01 reduces a value to the {0,1,X} domain: weak values convert to their
// strong equivalents, everything else becomes X.
func (l Logic) to01() Logic {
	switch l {
	case L0, WL:
		return L0
	case L1, WH:
		return L1
	default:
		return X
	}
}

// IsHigh reports whether the value reads as logical 1 ('1' or 'H').
func (l Logic) IsHigh() bool { return l.to01() == L1 }

// IsLow reports whether the value reads as logical 0 ('0' or 'L').
func (l Logic) IsLow() bool { return l.to01() == L0 }

// Defined reports whether the value is a defined binary level.
func (l Logic) Defined() bool { return l.to01() != X }

// Not returns the logical inverse with X propagation.
func (l Logic) Not() Logic {
	switch l.to01() {
	case L0:
		return L1
	case L1:
		return L0
	default:
		return X
	}
}

// And returns a AND b with X propagation (0 dominates).
func (l Logic) And(o Logic) Logic {
	a, b := l.to01(), o.to01()
	if a == L0 || b == L0 {
		return L0
	}
	if a == L1 && b == L1 {
		return L1
	}
	return X
}

// Or returns a OR b with X propagation (1 dominates).
func (l Logic) Or(o Logic) Logic {
	a, b := l.to01(), o.to01()
	if a == L1 || b == L1 {
		return L1
	}
	if a == L0 && b == L0 {
		return L0
	}
	return X
}

// Xor returns a XOR b with X propagation.
func (l Logic) Xor(o Logic) Logic {
	a, b := l.to01(), o.to01()
	if a == X || b == X {
		return X
	}
	if a == b {
		return L0
	}
	return L1
}

// LV is a logic vector. Index 0 is the least significant bit, matching
// VHDL's "downto" convention read right to left: LV{b0, b1, ...} prints as
// "...b1b0".
type LV []Logic

// NewLV returns a vector of the given width with every bit set to init.
func NewLV(width int, init Logic) LV {
	v := make(LV, width)
	for i := range v {
		v[i] = init
	}
	return v
}

// FromUint returns a vector of the given width holding the unsigned value
// (truncated to width bits).
func FromUint(val uint64, width int) LV {
	v := make(LV, width)
	for i := 0; i < width; i++ {
		if val&(1<<uint(i)) != 0 {
			v[i] = L1
		} else {
			v[i] = L0
		}
	}
	return v
}

// FromByte returns an 8-bit vector for b.
func FromByte(b byte) LV { return FromUint(uint64(b), 8) }

// ParseLV parses a VHDL-style bit string, most significant bit first,
// e.g. "10ZX".
func ParseLV(s string) (LV, error) {
	v := make(LV, len(s))
	for i := 0; i < len(s); i++ {
		l, err := ParseLogic(s[len(s)-1-i])
		if err != nil {
			return nil, err
		}
		v[i] = l
	}
	return v, nil
}

// MustParseLV is ParseLV that panics on error, for literals in tests and
// device models.
func MustParseLV(s string) LV {
	v, err := ParseLV(s)
	if err != nil {
		panic(err)
	}
	return v
}

// String prints the vector most significant bit first.
func (v LV) String() string {
	var b strings.Builder
	for i := len(v) - 1; i >= 0; i-- {
		b.WriteString(v[i].String())
	}
	return b.String()
}

// Uint converts the vector to an unsigned integer. ok is false when any
// bit is not a defined binary level or the width exceeds 64.
func (v LV) Uint() (val uint64, ok bool) {
	if len(v) > 64 {
		return 0, false
	}
	for i, l := range v {
		switch l.to01() {
		case L1:
			val |= 1 << uint(i)
		case L0:
		default:
			return 0, false
		}
	}
	return val, true
}

// Byte converts an 8-bit (or narrower) vector to a byte.
func (v LV) Byte() (byte, bool) {
	u, ok := v.Uint()
	if !ok || len(v) > 8 {
		return 0, false
	}
	return byte(u), ok
}

// Equal reports exact value equality (same width, same std_logic values).
func (v LV) Equal(o LV) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// TwoState reports whether every bit is a forcing 0 or 1 — no
// uninitialized, unknown, high-impedance, weak or don't-care values. A
// signal whose transitions are all two-state on both sides is a candidate
// for a compiled bit-parallel fast path that skips 9-value resolution.
func (v LV) TwoState() bool {
	for _, l := range v {
		if l != L0 && l != L1 {
			return false
		}
	}
	return true
}

// Defined reports whether every bit is a defined binary level.
func (v LV) Defined() bool {
	for _, l := range v {
		if !l.Defined() {
			return false
		}
	}
	return true
}

// Clone returns a copy of the vector.
func (v LV) Clone() LV {
	c := make(LV, len(v))
	copy(c, v)
	return c
}

// Not returns the bitwise inverse.
func (v LV) Not() LV {
	r := make(LV, len(v))
	for i := range v {
		r[i] = v[i].Not()
	}
	return r
}

// And returns the bitwise AND. Widths must match.
func (v LV) And(o LV) LV { return v.zip(o, Logic.And) }

// Or returns the bitwise OR. Widths must match.
func (v LV) Or(o LV) LV { return v.zip(o, Logic.Or) }

// Xor returns the bitwise XOR. Widths must match.
func (v LV) Xor(o LV) LV { return v.zip(o, Logic.Xor) }

func (v LV) zip(o LV, op func(Logic, Logic) Logic) LV {
	if len(v) != len(o) {
		panic(fmt.Sprintf("hdl: width mismatch %d vs %d", len(v), len(o)))
	}
	r := make(LV, len(v))
	for i := range v {
		r[i] = op(v[i], o[i])
	}
	return r
}

// Add returns v + o modulo 2^width plus the carry-out. Any undefined input
// bit makes the whole result X.
func (v LV) Add(o LV) (sum LV, carry Logic) {
	if len(v) != len(o) {
		panic(fmt.Sprintf("hdl: width mismatch %d vs %d", len(v), len(o)))
	}
	if !v.Defined() || !o.Defined() {
		return NewLV(len(v), X), X
	}
	sum = make(LV, len(v))
	c := Logic(L0)
	for i := range v {
		a, b := v[i].to01(), o[i].to01()
		s := a.Xor(b).Xor(c)
		c = a.And(b).Or(c.And(a.Xor(b)))
		sum[i] = s
	}
	return sum, c
}

// Incr returns v + 1 modulo 2^width.
func (v LV) Incr() LV {
	one := NewLV(len(v), L0)
	if len(one) > 0 {
		one[0] = L1
	}
	s, _ := v.Add(one)
	return s
}

// Slice returns bits [lo, lo+width) as a new vector (VHDL slice of a
// downto range).
func (v LV) Slice(lo, width int) LV {
	if lo < 0 || lo+width > len(v) {
		panic(fmt.Sprintf("hdl: slice [%d,%d) out of range of width %d", lo, lo+width, len(v)))
	}
	return v[lo : lo+width].Clone()
}

// Concat returns o & v in VHDL terms: o becomes the new most significant
// part.
func (v LV) Concat(o LV) LV {
	r := make(LV, 0, len(v)+len(o))
	r = append(r, v...)
	r = append(r, o...)
	return r
}
