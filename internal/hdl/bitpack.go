package hdl

// Bit-packed two-state values: the data plane of the compiled fast path
// (DESIGN.md §18). A logic vector whose bits are all forcing 0/1 is stored
// as one uint64 word, bit i of the word mirroring bit i of the vector
// (index 0 = least significant, matching LV). The independent std_logic
// bits of a bus are thereby packed into one machine word, so a bitwise
// AND/OR/XOR/NOT over a 64-bit-wide signal costs one ALU operation instead
// of 64 nine-value table lookups — the CCSS-style bit-parallel evaluation
// the compiled plan runs while a region is two-state pure.
//
// Packing is strictly a mirror: the nine-value LV representation remains
// the source of truth for any value containing U/X/Z/weak/don't-care bits,
// and the event kernel's resolution semantics are untouched. The packed
// word is valid only while the signal's pknown flag is set.

// packMask returns the valid-bit mask for a width (width must be 1..64).
func packMask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}

// PackTwoState packs the vector into a uint64, bit i of the word taking
// bit i of the vector. ok is false when any bit is not a forcing 0/1 or
// the width exceeds 64 — such values stay on the nine-value path.
func (v LV) PackTwoState() (word uint64, ok bool) {
	if len(v) > 64 {
		return 0, false
	}
	for i, l := range v {
		switch l {
		case L1:
			word |= uint64(1) << uint(i)
		case L0:
		default:
			return 0, false
		}
	}
	return word, true
}

// unpackInto writes the packed word into an existing vector (no
// allocation): bit i of the word becomes L0/L1 at index i.
func unpackInto(v LV, word uint64) {
	for i := range v {
		if word&(uint64(1)<<uint(i)) != 0 {
			v[i] = L1
		} else {
			v[i] = L0
		}
	}
}

// fromPacked materializes a packed word as a fresh vector.
func fromPacked(word uint64, width int) LV {
	v := make(LV, width)
	unpackInto(v, word)
	return v
}

// packedGate evaluates one gate operation bit-parallel over packed words,
// folding left over the inputs the way the nine-value LV operations fold.
// The result is masked to the gate width, so inverting operations do not
// leak bits above the vector.
func packedGate(op GateOp, ins []uint64, mask uint64) uint64 {
	acc := ins[0]
	for _, w := range ins[1:] {
		switch op {
		case GateAnd, GateNand:
			acc &= w
		case GateOr, GateNor:
			acc |= w
		case GateXor, GateXnor:
			acc ^= w
		}
	}
	switch op {
	case GateNot, GateNand, GateNor, GateXnor:
		acc = ^acc
	}
	return acc & mask
}
