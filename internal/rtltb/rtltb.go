// Package rtltb is the traditional register-transfer-level regression
// test bench the paper's approach replaces: stimulus generators and
// response checkers written as clocked hardware processes inside the HDL
// simulator itself. Its generator keeps an LFSR, a gap down-counter and a
// vector-ROM index as real signals toggling every clock; its checker
// recomputes the HEC octet byte-serially on live signals. Every one of
// those per-clock signal updates is an event the event-driven simulator
// must evaluate — the blow-up that makes pure-VHDL test benches slow and
// motivates reusing network-level test benches instead (experiment E1).
package rtltb

import (
	"castanet/internal/atm"
	"castanet/internal/hdl"
)

// Generator plays a precompiled list of (gap, cell) stimulus vectors onto
// a bit-level cell port, the way a VHDL test bench reads a vector file.
// All sequencing state lives in signals.
type Generator struct {
	// Done is high once every vector has been played.
	Done *hdl.Signal

	// Emitted counts cells completely transmitted.
	Emitted uint64
}

// Vector is one stimulus entry: wait GapCycles, then transmit Cell.
type Vector struct {
	GapCycles int
	Cell      *atm.Cell
}

// NewGenerator elaborates a stimulus generator driving data/sync.
func NewGenerator(h *hdl.Simulator, name string, clk, data, sync *hdl.Signal, vectors []Vector) *Generator {
	g := &Generator{Done: h.Bit(name+"_done", hdl.U)}

	images := make([][atm.CellBytes]byte, len(vectors))
	for i, v := range vectors {
		c := v.Cell.Clone()
		c.StampSeq()
		images[i] = c.Marshal()
	}

	// Test-bench state, all as signals (romIdx/gapCnt/byteCnt/lfsr change
	// every cycle while active — the realistic RTL-TB event load).
	romIdx := h.Signal(name+"_rom_idx", 16, hdl.U)
	gapCnt := h.Signal(name+"_gap_cnt", 16, hdl.U)
	byteCnt := h.Signal(name+"_byte_cnt", 8, hdl.U)
	lfsr := h.Signal(name+"_lfsr", 16, hdl.U)

	dIdx := romIdx.Driver(name)
	dGap := gapCnt.Driver(name)
	dByte := byteCnt.Driver(name)
	dLfsr := lfsr.Driver(name)
	dData := data.Driver(name)
	dSync := sync.Driver(name)
	dDone := g.Done.Driver(name)

	dIdx.SetUint(0)
	dGap.SetUint(0)
	dByte.SetUint(0xFF) // idle marker
	dLfsr.SetUint(0xACE1)
	dData.SetUint(0)
	dSync.SetBit(hdl.L0)
	dDone.SetBit(hdl.L0)

	if len(vectors) > 0 {
		dGap.SetUint(uint64(vectors[0].GapCycles))
	} else {
		dDone.SetBit(hdl.L1)
	}

	h.Process(name, func() {
		if !clk.Rising() {
			return
		}
		// Free-running LFSR (x^16+x^14+x^13+x^11+1), as TBs use for
		// randomized fields; one 16-bit signal event per clock.
		lv, ok := lfsr.Uint()
		if ok {
			bit := (lv ^ lv>>2 ^ lv>>3 ^ lv>>5) & 1
			dLfsr.SetUint(lv>>1 | bit<<15)
		}

		idx, _ := romIdx.Uint()
		if int(idx) >= len(vectors) {
			dDone.SetBit(hdl.L1)
			dSync.SetBit(hdl.L0)
			dData.SetUint(0)
			return
		}
		gap, _ := gapCnt.Uint()
		bc, _ := byteCnt.Uint()
		if bc == 0xFF { // idle: counting the gap down
			if gap > 0 {
				dGap.SetUint(gap - 1)
				dSync.SetBit(hdl.L0)
				dData.SetUint(0)
				return
			}
			bc = 0
		}
		img := images[idx]
		dData.SetUint(uint64(img[bc]))
		if bc == 0 {
			dSync.SetBit(hdl.L1)
		} else {
			dSync.SetBit(hdl.L0)
		}
		if int(bc) == atm.CellBytes-1 {
			g.Emitted++
			dByte.SetUint(0xFF)
			dIdx.SetUint(idx + 1)
			if int(idx+1) < len(vectors) {
				dGap.SetUint(uint64(vectors[idx+1].GapCycles))
			}
		} else {
			dByte.SetUint(bc + 1)
		}
	}, clk)
	return g
}

// wdogReload is the watchdog monitor's timeout in clock cycles (a few
// cell times of line silence).
const wdogReload = 256

// Checker is the response side of the RTL test bench: it follows a cell
// port byte by byte, recomputing the HEC in a live 8-bit accumulator
// signal and counting cells and errors in counter signals.
type Checker struct {
	// CellCount/ErrCount are 16-bit counter signals, readable by the
	// test bench top level like any DUT diagnostic output.
	CellCount *hdl.Signal
	ErrCount  *hdl.Signal

	// Cells/Errors mirror the counters for the Go-side harness.
	Cells  uint64
	Errors uint64
}

// NewChecker elaborates a checker watching data/sync. Besides the HEC
// recomputation it carries the usual regression-bench monitors: a header
// shift register capturing the VPI/VCI of every cell, and a free-running
// watchdog counter that a timeout process would use to flag a dead line —
// both live signals updated every clock, as real test-bench processes are.
func NewChecker(h *hdl.Simulator, name string, clk, data, sync *hdl.Signal) *Checker {
	c := &Checker{
		CellCount: h.Signal(name+"_cells", 16, hdl.U),
		ErrCount:  h.Signal(name+"_errs", 16, hdl.U),
	}
	hecAcc := h.Signal(name+"_hec", 8, hdl.U)
	byteCnt := h.Signal(name+"_byte", 8, hdl.U)
	hdrReg := h.Signal(name+"_hdr", 24, hdl.U)
	watchdog := h.Signal(name+"_wdog", 16, hdl.U)

	dCells := c.CellCount.Driver(name)
	dErrs := c.ErrCount.Driver(name)
	dHec := hecAcc.Driver(name)
	dByte := byteCnt.Driver(name)
	dHdr := hdrReg.Driver(name)
	dWdog := watchdog.Driver(name)
	dCells.SetUint(0)
	dErrs.SetUint(0)
	dHec.SetUint(0)
	dByte.SetUint(0xFF)
	dHdr.SetUint(0)
	dWdog.SetUint(wdogReload)

	// crcStep is the byte-serial CRC-8 update (x^8+x^2+x+1) the checker
	// hardware would implement as XOR trees.
	crcStep := func(crc, b byte) byte {
		crc ^= b
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
		return crc
	}

	h.Process(name, func() {
		if !clk.Rising() {
			return
		}
		// Watchdog: reloaded by cell sync, otherwise counting down every
		// cycle (a timeout monitor keeps ticking through idle periods).
		if sync.Bit().IsHigh() {
			dWdog.SetUint(wdogReload)
		} else if wd, ok := watchdog.Uint(); ok && wd > 0 {
			dWdog.SetUint(wd - 1)
		}
		bc, _ := byteCnt.Uint()
		acc, _ := hecAcc.Uint()
		if sync.Bit().IsHigh() {
			bc = 0
			acc = 0 // restart the accumulator with this cell
		} else if bc == 0xFF {
			return
		}
		// Header monitor: shift the first three octets into the header
		// register for protocol coverage collection.
		if bc < 3 {
			if hv, ok := hdrReg.Uint(); ok {
				if dv, ok2 := data.Uint(); ok2 {
					dHdr.SetUint((hv<<8 | dv) & 0xFFFFFF)
				}
			}
		}
		bu, ok := data.Uint()
		b := byte(bu)
		if !ok {
			ec, _ := c.ErrCount.Uint()
			dErrs.SetUint(ec + 1)
			c.Errors++
			dByte.SetUint(0xFF)
			return
		}
		switch {
		case bc < 4:
			dHec.SetUint(uint64(crcStep(byte(acc), b)))
		case bc == 4:
			if byte(acc)^0x55 != b {
				ec, _ := c.ErrCount.Uint()
				dErrs.SetUint(ec + 1)
				c.Errors++
			}
		}
		if int(bc) == atm.CellBytes-1 {
			cc, _ := c.CellCount.Uint()
			dCells.SetUint(cc + 1)
			c.Cells++
			dByte.SetUint(0xFF)
		} else {
			dByte.SetUint(bc + 1)
		}
	}, clk)
	return c
}
