package rtltb

import (
	"testing"

	"castanet/internal/atm"
	"castanet/internal/hdl"
	"castanet/internal/mapping"
	"castanet/internal/sim"
)

const clkPeriod = 50 * sim.Nanosecond

func TestGeneratorEmitsVectors(t *testing.T) {
	h := hdl.New()
	clk := h.Bit("clk", hdl.U)
	h.Clock(clk, clkPeriod)
	data := h.Signal("data", 8, hdl.U)
	sync := h.Bit("sync", hdl.U)
	vectors := []Vector{
		{GapCycles: 3, Cell: &atm.Cell{Header: atm.Header{VPI: 1, VCI: 10}, Seq: 0}},
		{GapCycles: 0, Cell: &atm.Cell{Header: atm.Header{VPI: 2, VCI: 20}, Seq: 1}},
		{GapCycles: 17, Cell: &atm.Cell{Header: atm.Header{VPI: 3, VCI: 30}, Seq: 2}},
	}
	g := NewGenerator(h, "gen", clk, data, sync, vectors)
	var got []*atm.Cell
	var times []sim.Time
	rd := mapping.NewCellPortReader(h, "rx", clk, data, sync)
	rd.OnCell = func(c *atm.Cell) { got = append(got, c); times = append(times, h.Now()) }
	if err := h.Run(400 * clkPeriod); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("received %d cells, want 3", len(got))
	}
	for i, c := range got {
		if c.Seq != uint32(i) || c.VPI != byte(i+1) {
			t.Errorf("cell %d = %v", i, c)
		}
	}
	if g.Emitted != 3 {
		t.Errorf("Emitted = %d", g.Emitted)
	}
	if !g.Done.Bit().IsHigh() {
		t.Error("Done not asserted")
	}
	// Gap timing: cell1 follows cell0 immediately (gap 0): 53 cycles
	// apart; cell2 waits 17 extra cycles.
	if d := times[1] - times[0]; d != 53*clkPeriod {
		t.Errorf("cell1 - cell0 = %v, want 53 cycles", d)
	}
	if d := times[2] - times[1]; d != (53+17)*clkPeriod {
		t.Errorf("cell2 - cell1 = %v, want 70 cycles", d)
	}
}

func TestCheckerCountsAndValidates(t *testing.T) {
	h := hdl.New()
	clk := h.Bit("clk", hdl.U)
	h.Clock(clk, clkPeriod)
	data := h.Signal("data", 8, hdl.U)
	sync := h.Bit("sync", hdl.U)
	vectors := []Vector{
		{GapCycles: 0, Cell: &atm.Cell{Header: atm.Header{VPI: 1, VCI: 10}}},
		{GapCycles: 5, Cell: &atm.Cell{Header: atm.Header{VPI: 2, VCI: 20}}},
	}
	NewGenerator(h, "gen", clk, data, sync, vectors)
	chk := NewChecker(h, "chk", clk, data, sync)
	if err := h.Run(300 * clkPeriod); err != nil {
		t.Fatal(err)
	}
	if chk.Cells != 2 {
		t.Errorf("checker cells = %d, want 2", chk.Cells)
	}
	if chk.Errors != 0 {
		t.Errorf("checker errors = %d on clean stream", chk.Errors)
	}
	cc, _ := chk.CellCount.Uint()
	if cc != 2 {
		t.Errorf("CellCount signal = %d", cc)
	}
}

func TestCheckerDetectsCorruptHEC(t *testing.T) {
	h := hdl.New()
	clk := h.Bit("clk", hdl.U)
	h.Clock(clk, clkPeriod)
	data := h.Signal("data", 8, hdl.U)
	sync := h.Bit("sync", hdl.U)
	dd := data.Driver("tb")
	ds := sync.Driver("tb")
	chk := NewChecker(h, "chk", clk, data, sync)

	cell := &atm.Cell{Header: atm.Header{VPI: 1, VCI: 100}}
	img := cell.Marshal()
	img[4] ^= 0x40 // corrupt the HEC octet
	for b := 0; b < atm.CellBytes; b++ {
		b := b
		h.Schedule(sim.Duration(b)*clkPeriod+10*sim.Nanosecond, func() {
			dd.SetUint(uint64(img[b]))
			if b == 0 {
				ds.SetBit(hdl.L1)
			} else {
				ds.SetBit(hdl.L0)
			}
		})
	}
	if err := h.Run(80 * clkPeriod); err != nil {
		t.Fatal(err)
	}
	if chk.Errors != 1 {
		t.Errorf("checker errors = %d, want 1", chk.Errors)
	}
	if chk.Cells != 1 {
		t.Errorf("checker cells = %d, want 1 (errored cells still counted)", chk.Cells)
	}
}

// The whole point of the package: the RTL test bench costs far more HDL
// events per cell than the bare stream it produces.
func TestRTLTestbenchEventOverhead(t *testing.T) {
	makeCells := func(n int) []Vector {
		var v []Vector
		for i := 0; i < n; i++ {
			v = append(v, Vector{GapCycles: 10, Cell: &atm.Cell{Header: atm.Header{VPI: 1, VCI: 10}, Seq: uint32(i)}})
		}
		return v
	}

	// Bare stream: writer only.
	bare := hdl.New()
	clkB := bare.Bit("clk", hdl.U)
	bare.Clock(clkB, clkPeriod)
	dataB := bare.Signal("data", 8, hdl.U)
	syncB := bare.Bit("sync", hdl.U)
	w := mapping.NewCellPortWriter(bare, "tx", clkB, dataB, syncB)
	for _, v := range makeCells(20) {
		w.Enqueue(v.Cell)
	}
	if err := bare.Run(20 * 70 * clkPeriod); err != nil {
		t.Fatal(err)
	}

	// Full RTL TB: generator + checker.
	tb := hdl.New()
	clkT := tb.Bit("clk", hdl.U)
	tb.Clock(clkT, clkPeriod)
	dataT := tb.Signal("data", 8, hdl.U)
	syncT := tb.Bit("sync", hdl.U)
	NewGenerator(tb, "gen", clkT, dataT, syncT, makeCells(20))
	NewChecker(tb, "chk", clkT, dataT, syncT)
	if err := tb.Run(20 * 70 * clkPeriod); err != nil {
		t.Fatal(err)
	}

	if tb.Events() < 2*bare.Events() {
		t.Errorf("RTL TB events (%d) not clearly above bare stream events (%d)",
			tb.Events(), bare.Events())
	}
}
