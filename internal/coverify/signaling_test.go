package coverify

import (
	"testing"

	"castanet/internal/atm"
	"castanet/internal/netsim"
	"castanet/internal/signaling"
	"castanet/internal/sim"
)

// TestSignalingDrivenConnections exercises the full stack of the paper's
// introduction: embedded control software (CAC agent + signaling EFSMs in
// the process domain) establishes connections at run time in the very
// switch being co-verified; user cells flow only while their connection
// is admitted, and the hardware/reference comparison stays clean
// throughout because both share the connection table the control software
// maintains.
func TestSignalingDrivenConnections(t *testing.T) {
	// Start from an EMPTY connection table: nothing is routable until the
	// control software admits it.
	table := atm.NewTranslator()
	rig := NewSwitchRig(SwitchRigConfig{Seed: 21, Table: table})

	// Control software: CAC installs admitted VCs into the shared table
	// (visible to the RTL switch and the reference model alike).
	cac := &signaling.CAC{CapacityBps: 5e6}
	cac.OnAdmit = func(vc atm.VC, rate float64) {
		table.Add(vc, atm.Route{Port: 2, Out: atm.VC{VPI: 0x20, VCI: vc.VCI + 0x100}})
	}
	cac.OnRelease = func(vc atm.VC) { table.Remove(vc) }
	cacNode := rig.Net.Node("cac", signaling.NewCACMachine(cac))

	vc := atm.VC{VPI: 1, VCI: 100}
	caller := &signaling.Caller{
		VC: vc, RateBps: 2e6,
		StartDelay: 2 * sim.Millisecond,
		HoldTime:   6 * sim.Millisecond,
	}
	callerNode := rig.Net.Node("caller", caller.Machine())
	rig.Net.Connect(callerNode, 0, cacNode, 0, netsim.LinkParams{Delay: 50 * sim.Microsecond})
	rig.Net.Connect(cacNode, 0, callerNode, 0, netsim.LinkParams{Delay: 50 * sim.Microsecond})

	// User plane: cells on the (initially unknown) connection, injected
	// directly to both the reference and the hardware coupling. Phase 1
	// (before admission), phase 2 (while active, with margin from the
	// table edits), phase 3 (after release).
	iface, _ := rig.Net.Lookup("castanet")
	refNode, _ := rig.Net.Lookup("refswitch")
	seq := uint32(0)
	sendCell := func(at sim.Time) {
		s := seq
		seq++
		rig.Net.Sched.At(at, func() {
			c := &atm.Cell{Header: atm.Header{VPI: vc.VPI, VCI: vc.VCI}, Seq: s}
			c.StampSeq()
			refNode.Inject(rig.Net.NewPacket("cell", c.Clone(), atm.CellBytes*8), 0)
			iface.Inject(rig.Net.NewPacket("cell", c.Clone(), atm.CellBytes*8), 0)
		})
	}
	// Phase 1: before admission (connection unknown -> both sides drop).
	for i := 0; i < 5; i++ {
		sendCell(sim.Time(200+100*i) * sim.Microsecond)
	}
	// Phase 2: while active (admitted ~2.1ms, released ~8.1ms; keep 1ms
	// margins so no cell is in flight across a table edit).
	for i := 0; i < 10; i++ {
		sendCell(sim.Time(3500+200*i) * sim.Microsecond)
	}
	// Phase 3: after release.
	for i := 0; i < 5; i++ {
		sendCell(sim.Time(9500+100*i) * sim.Microsecond)
	}

	if err := rig.Run(15 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}

	if caller.State() != "done" {
		t.Fatalf("caller state = %q", caller.State())
	}
	if cac.Admitted != 1 || cac.Released != 1 {
		t.Fatalf("cac admitted=%d released=%d", cac.Admitted, cac.Released)
	}
	// Exactly the phase-2 cells got through, on the CAC-chosen route with
	// the CAC-chosen translation; phases 1 and 3 were dropped identically
	// by hardware and reference.
	if rig.Cmp.Matched != 10 {
		t.Errorf("matched = %d, want 10 (%s)", rig.Cmp.Matched, rig.Report())
	}
	for _, m := range rig.Cmp.Mismatches() {
		t.Errorf("%v", m)
	}
	if len(rig.Cmp.Outstanding()) != 0 {
		t.Errorf("outstanding: %v", rig.Cmp.Outstanding())
	}
	if rig.DUT.UnknownVC != 10 {
		t.Errorf("hardware unknown-VC drops = %d, want 10 (5 before + 5 after)", rig.DUT.UnknownVC)
	}
	if rig.Ref.UnknownVC != 10 {
		t.Errorf("reference unknown-VC drops = %d, want 10", rig.Ref.UnknownVC)
	}
}
