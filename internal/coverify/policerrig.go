package coverify

import (
	"fmt"

	"castanet/internal/atm"
	"castanet/internal/cosim"
	"castanet/internal/dut"
	"castanet/internal/hdl"
	"castanet/internal/ipc"
	"castanet/internal/mapping"
	"castanet/internal/netsim"
	"castanet/internal/obs"
	"castanet/internal/refmodel"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

// kindPolicedOut labels cells the UPC hardware let through.
const kindPolicedOut = ipc.KindUser + 48

// SlotAligned wraps a traffic model so every inter-arrival interval is a
// whole number of hardware clock cycles — the physical reality of a
// slotted ATM line, and the condition under which the network-level GCRA
// reference and the cycle-counting UPC hardware make identical
// conformance decisions.
type SlotAligned struct {
	Model  traffic.Model
	Period sim.Duration
}

// Next implements traffic.Model.
func (s SlotAligned) Next(rng *sim.RNG) sim.Duration {
	d := s.Model.Next(rng)
	q := (d + s.Period/2) / s.Period * s.Period
	if q < s.Period {
		q = s.Period
	}
	return q
}

// PolicerContract is one UPC contract of the rig.
type PolicerContract struct {
	VC           atm.VC
	PeakInterval sim.Duration // contracted minimum cell spacing
	Tau          sim.Duration // cell delay variation tolerance
}

// PolicerRigConfig parameterizes the UPC co-verification.
type PolicerRigConfig struct {
	Seed        uint64
	ClockPeriod sim.Duration
	Delta       sim.Duration
	Tag         bool // tag instead of discard
	Contracts   []PolicerContract
	Sources     []PolicerSource
	SyncEvery   sim.Duration
	// Batch coalesces per-instant coupling messages into δ-window units
	// (see SwitchRigConfig.Batch).
	Batch bool
	// NoCompiled opts out of the compiled bit-parallel data plane (see
	// SwitchRigConfig.NoCompiled).
	NoCompiled bool
	// Metrics and Trace mirror SwitchRigConfig's observability hooks.
	Metrics *obs.Registry
	Trace   *obs.Tracer
	// Cover, when non-nil, receives the run's functional coverage: the
	// UPC action bins under "coverify.policer" (folded once from the DUT's
	// end-of-run counters) plus the shared cosim.sync group.
	Cover *obs.CoverRegistry
}

// PolicerSource is one offered stream.
type PolicerSource struct {
	Model traffic.Model
	VC    atm.VC
	Cells uint64
}

// PolicerRig verifies the UPC hardware against the GCRA reference: both
// see the same slot-aligned cell stream; the comparator checks that
// exactly the same cells emerge, with identical CLP tagging.
type PolicerRig struct {
	Cfg PolicerRigConfig

	Net    *netsim.Network
	HDL    *hdl.Simulator
	DUT    *dut.Policer
	Ref    *refmodel.PolicerRef
	Entity *cosim.Entity
	Iface  *cosim.InterfaceProcess
	Cmp    *Comparator1

	writer      *mapping.CellPortWriter
	nextSeq     uint32
	Offered     uint64
	coverAction *obs.CoverPoint

	// RefTrace/DUTTrace, when set, observe each policed arrival on the
	// reference path (with its network time) and the hardware path (with
	// its cycle count) — diagnostic hooks for timing-alignment analysis.
	RefTrace func(c *atm.Cell, at sim.Time)
	DUTTrace func(c *atm.Cell, cycle uint64)
}

// Comparator1 is a single-stream variant of the refmodel comparator: it
// matches by sequence number on one logical port.
type Comparator1 struct {
	expected map[uint32]*atm.Cell
	matched  map[uint32]bool
	Matched  uint64
	Bad      []string
}

// NewComparator1 returns an empty single-stream comparator.
func NewComparator1() *Comparator1 {
	return &Comparator1{expected: make(map[uint32]*atm.Cell), matched: make(map[uint32]bool)}
}

// Expect records a reference output cell.
func (c *Comparator1) Expect(cell *atm.Cell) { c.expected[cell.Seq] = cell.Clone() }

// Actual records a hardware output cell.
func (c *Comparator1) Actual(cell *atm.Cell) {
	exp, ok := c.expected[cell.Seq]
	if !ok {
		c.Bad = append(c.Bad, fmt.Sprintf("seq %d: hardware passed a cell the reference policer dropped (%v clp=%d)",
			cell.Seq, cell.VC(), cell.CLP))
		return
	}
	if c.matched[cell.Seq] {
		c.Bad = append(c.Bad, fmt.Sprintf("seq %d: duplicate", cell.Seq))
		return
	}
	if exp.Header != cell.Header {
		c.Bad = append(c.Bad, fmt.Sprintf("seq %d: header %+v, reference %+v", cell.Seq, cell.Header, exp.Header))
		return
	}
	c.matched[cell.Seq] = true
	c.Matched++
}

// Outstanding returns reference cells the hardware never delivered.
func (c *Comparator1) Outstanding() int {
	n := 0
	for seq := range c.expected {
		if !c.matched[seq] {
			n++
		}
	}
	return n
}

// Clean reports a perfect comparison.
func (c *Comparator1) Clean() bool { return len(c.Bad) == 0 && c.Outstanding() == 0 }

// NewPolicerRig elaborates the UPC co-verification environment.
func NewPolicerRig(cfg PolicerRigConfig) *PolicerRig {
	if cfg.ClockPeriod == 0 {
		cfg.ClockPeriod = 50 * sim.Nanosecond
	}
	if cfg.Delta == 0 {
		// UPC hardware is timing-sensitive: its conformance decisions
		// depend on exact cell spacing. A large processing window δ would
		// let the hardware clock overrun later cells' time stamps,
		// delaying their physical transmission and perturbing the very
		// inter-arrival gaps under test. One clock of lookahead keeps the
		// coupling cycle-faithful (arrivals are at least one slot apart).
		cfg.Delta = cfg.ClockPeriod
	}
	if cfg.SyncEvery == 0 {
		cfg.SyncEvery = 50 * sim.Microsecond
	}
	r := &PolicerRig{Cfg: cfg}
	r.coverAction = cfg.Cover.Group("coverify.policer").Point("action",
		"conforming", "nonconforming", "tagged", "discarded")

	r.HDL = hdl.New()
	r.HDL.Instrument(cfg.Metrics, "hdl.sim")
	clk := r.HDL.Bit("clk", hdl.U)
	r.HDL.Clock(clk, cfg.ClockPeriod)
	r.DUT = dut.NewPolicer(r.HDL, clk, 64)
	if cfg.Tag {
		r.DUT.Action = dut.PolicerTag
	}

	ref := refmodel.NewPolicerRef(cfg.Tag)
	r.Ref = ref
	r.Cmp = NewComparator1()
	ref.OnForward = func(ctx *netsim.Ctx, c *atm.Cell) { r.Cmp.Expect(c) }

	for _, ct := range cfg.Contracts {
		if err := r.DUT.ContractFor(ct.VC, ct.PeakInterval, ct.Tau, cfg.ClockPeriod); err != nil {
			panic(err)
		}
		ref.Contract(ct.VC, ct.PeakInterval, ct.Tau)
	}

	r.Entity = cosim.NewEntity(r.HDL)
	r.Entity.Instrument(cfg.Metrics, cfg.Trace)
	r.Entity.InstrumentCover(cfg.Cover)
	r.writer = mapping.NewCellPortWriter(r.HDL, "castanet_tx", clk, r.DUT.In.Data, r.DUT.In.Sync)
	r.Entity.Input(cosim.KindData, cfg.Delta, func(e *cosim.Entity, msg ipc.Message) error {
		v, err := (mapping.CellCodec{}).Decode(msg.Data)
		if err != nil {
			return err
		}
		r.writer.Enqueue(v.(*atm.Cell))
		return nil
	})
	rd := mapping.NewCellPortReader(r.HDL, "castanet_rx", clk, r.DUT.Out.Data, r.DUT.Out.Sync)
	rd.SkipIdle = true
	rd.OnCell = func(c *atm.Cell) {
		data, err := (mapping.CellCodec{}).Encode(c)
		if err != nil {
			panic(err)
		}
		r.Entity.Emit(kindPolicedOut, data)
	}

	registry := mapping.NewRegistry()
	registry.Register(cosim.KindData, mapping.CellCodec{})
	registry.Register(kindPolicedOut, mapping.CellCodec{})
	r.Iface = &cosim.InterfaceProcess{
		Coupling:  &cosim.Direct{Entity: r.Entity},
		Registry:  registry,
		SyncEvery: cfg.SyncEvery,
		Batch:     cfg.Batch,
		OnResponse: func(ctx *netsim.Ctx, resp cosim.Response) {
			r.Cmp.Actual(resp.Value.(*atm.Cell))
		},
	}
	r.Iface.Instrument(cfg.Metrics, cfg.Trace)
	r.Iface.InstrumentCover(cfg.Cover)

	r.Net = netsim.New(cfg.Seed)
	r.Net.Sched.Instrument(cfg.Metrics, "net.sched")
	ifaceNode := r.Net.Node("castanet", r.Iface)
	refNode := r.Net.Node("refupc", ref)
	// The reference policer must observe the cell stream at the same
	// reference point as the hardware: after the physical line has
	// serialized it (one cell per 53 byte clocks). Without this line
	// model, conformance decisions near the GCRA boundary would differ
	// between the instantaneous network view and the bit-level view —
	// not a hardware bug, a mis-placed observation point.
	line := &netsim.Queue{ServiceTime: 53 * cfg.ClockPeriod}
	lineNode := r.Net.Node("line", line)
	r.Net.Connect(lineNode, 0, refNode, 0, netsim.LinkParams{})
	for i, s := range cfg.Sources {
		s := s
		src := &netsim.Source{
			Gen:   SlotAligned{Model: s.Model, Period: cfg.ClockPeriod},
			Limit: s.Cells,
			Make: func(ctx *netsim.Ctx, k uint64) *netsim.Packet {
				c := &atm.Cell{Header: atm.Header{VPI: s.VC.VPI, VCI: s.VC.VCI}}
				c.Seq = r.nextSeq
				r.nextSeq++
				r.Offered++
				c.StampSeq()
				return ctx.Net().NewPacket("cell", c, atm.CellBytes*8)
			},
		}
		srcNode := r.Net.Node(fmt.Sprintf("src%d", i), src)
		split := r.Net.Node(fmt.Sprintf("split%d", i), &netsim.Func{
			OnArrival: func(ctx *netsim.Ctx, pkt *netsim.Packet, port int) {
				cell := pkt.Data.(*atm.Cell)
				ctx.Send(ctx.Net().NewPacket("cell", cell.Clone(), pkt.Size), 0)
				ctx.Send(ctx.Net().NewPacket("cell", cell.Clone(), pkt.Size), 1)
			},
		})
		r.Net.Connect(srcNode, 0, split, 0, netsim.LinkParams{})
		r.Net.Connect(split, 0, lineNode, i, netsim.LinkParams{})
		r.Net.Connect(split, 1, ifaceNode, 0, netsim.LinkParams{})
	}
	if !cfg.NoCompiled {
		r.HDL.MustCompile()
	}
	return r
}

// Run executes the verification and drains the pipeline.
func (r *PolicerRig) Run(until sim.Time) error {
	if r.RefTrace != nil {
		r.Ref.OnArrival = func(c *atm.Cell, at sim.Time) { r.RefTrace(c, at) }
	}
	if r.DUTTrace != nil {
		r.DUT.OnPolice = func(c *atm.Cell, cycle uint64) { r.DUTTrace(c, cycle) }
	}
	r.Net.Run(until)
	r.Entity.FreezeLagStats = true
	if err := r.Entity.Deliver(ipc.Message{Kind: ipc.KindSync, Time: until + 100*53*r.Cfg.ClockPeriod}); err != nil {
		return err
	}
	for _, m := range r.Entity.TakeOutbox() {
		v, err := (mapping.CellCodec{}).Decode(m.Data)
		if err != nil {
			return err
		}
		r.Cmp.Actual(v.(*atm.Cell))
	}
	// UPC decisions accumulate in the DUT's diagnostic registers during
	// the run; fold them into the action bins once, after the drain.
	r.coverAction.Add("conforming", r.DUT.Conforming)
	r.coverAction.Add("nonconforming", r.DUT.NonConforming)
	r.coverAction.Add("tagged", r.DUT.Tagged)
	r.coverAction.Add("discarded", r.DUT.Discarded)
	return nil
}

// Report summarizes the UPC comparison.
func (r *PolicerRig) Report() string {
	return fmt.Sprintf("offered=%d ref[conf=%d viol=%d] dut[conf=%d viol=%d tag=%d drop=%d] matched=%d bad=%d outstanding=%d",
		r.Offered, r.Ref.Conforming, r.Ref.NonConforming,
		r.DUT.Conforming, r.DUT.NonConforming, r.DUT.Tagged, r.DUT.Discarded,
		r.Cmp.Matched, len(r.Cmp.Bad), r.Cmp.Outstanding())
}
