package coverify

import (
	"fmt"

	"castanet/internal/atm"
	"castanet/internal/board"
	"castanet/internal/cosim"
	"castanet/internal/cyclesim"
	"castanet/internal/dut"
	"castanet/internal/ipc"
	"castanet/internal/mapping"
	"castanet/internal/netsim"
	"castanet/internal/obs"
	"castanet/internal/refmodel"
	"castanet/internal/sim"
)

// BoardRig is the hardware-in-the-simulation-loop environment (the right
// path of Fig. 1): the same network-level test bench drives the
// "fabricated" switch — a cycle-based device mounted on the test board —
// through the board coupling instead of the HDL simulator, and the same
// comparator checks the outputs against the reference model. Test benches
// are thereby reused unchanged from simulation to functional chip
// verification, the paper's central claim.
type BoardRig struct {
	Cfg SwitchRigConfig

	Net     *netsim.Network
	Dev     *cyclesim.Switch
	Board   *board.Board
	Harness *board.StreamHarness
	Ref     *refmodel.SwitchRef
	Iface   *cosim.InterfaceProcess
	Cmp     *refmodel.Comparator

	nextSeq  uint32
	Offered  uint64
	coverCmp *obs.CoverPoint
}

// NewBoardRig elaborates the hardware-in-the-loop environment. The board
// runs at the configured HDL clock rate (capped at the board's 20 MHz)
// with the given memory depth per test cycle.
func NewBoardRig(cfg SwitchRigConfig, memDepth int) (*BoardRig, error) {
	if cfg.ClockPeriod == 0 {
		cfg.ClockPeriod = 50 * sim.Nanosecond
	}
	if cfg.Table == nil {
		cfg.Table = DefaultTable()
	}
	if cfg.Switch == (dut.SwitchConfig{}) {
		cfg.Switch = dut.DefaultSwitchConfig()
	}
	if cfg.SyncEvery == 0 {
		cfg.SyncEvery = 50 * sim.Microsecond
	}
	r := &BoardRig{Cfg: cfg}
	hdrVPI, hdrVCI, hdrPTI, hdrCLP0, hdrCLP1 := coverHeaderPoints(cfg.Cover)
	r.coverCmp = coverCmpPoint(cfg.Cover)

	r.Dev = cyclesim.NewSwitch(cfg.Table, cfg.Switch.InFifoCells, cfg.Switch.OutFifoCells)
	clockHz := 1 / (sim.Duration(cfg.ClockPeriod)).Seconds()
	if clockHz > board.MaxClockHz {
		clockHz = board.MaxClockHz
	}
	r.Board = board.New(r.Dev, clockHz, memDepth)
	if err := r.Board.Configure(board.SwitchConfig()); err != nil {
		return nil, err
	}
	h, err := board.NewStreamHarness(r.Board, board.SwitchStreams())
	if err != nil {
		return nil, err
	}
	r.Harness = h
	coupling := &board.Coupling{
		Harness: h,
		KindOf: func(k ipc.Kind) int {
			s := int(k - KindCellIn(0))
			if s < 0 || s >= dut.SwitchPorts {
				return -1
			}
			return s
		},
		RespKind: func(s int) ipc.Kind { return KindCellOut(s) },
		// Worst-case drain: a full output FIFO serializing at line rate
		// behind the last stimulus byte.
		DrainCycles: (cfg.Switch.OutFifoCells + 8) * 53,
	}

	r.Net = netsim.New(cfg.Seed)
	r.Net.Sched.Instrument(cfg.Metrics, "net.sched")
	r.Cmp = refmodel.NewComparator()
	r.Ref = &refmodel.SwitchRef{Table: cfg.Table}
	r.Ref.OnForward = func(ctx *netsim.Ctx, outPort int, c *atm.Cell) {
		r.Cmp.Expect(outPort, c)
	}
	registry := mapping.NewRegistry()
	for p := 0; p < dut.SwitchPorts; p++ {
		registry.Register(KindCellIn(p), mapping.CellCodec{})
		registry.Register(KindCellOut(p), mapping.CellCodec{})
	}
	r.Iface = &cosim.InterfaceProcess{
		Coupling:  coupling,
		Registry:  registry,
		SyncEvery: cfg.SyncEvery,
		Batch:     cfg.Batch, // inert: the board coupling is not batch-capable
		Classify:  func(pkt *netsim.Packet, port int) ipc.Kind { return KindCellIn(port) },
		OnResponse: func(ctx *netsim.Ctx, resp cosim.Response) {
			port := int(resp.Kind - KindCellOut(0))
			r.Cmp.Actual(port, resp.Value.(*atm.Cell))
		},
	}
	r.Iface.Instrument(cfg.Metrics, cfg.Trace)

	refNode := r.Net.Node("refswitch", r.Ref)
	ifaceNode := r.Net.Node("castanet", r.Iface)
	for p := 0; p < dut.SwitchPorts; p++ {
		tr := cfg.Traffic[p]
		if tr.Model == nil || tr.Cells == 0 {
			continue
		}
		trc := tr
		src := &netsim.Source{
			Gen:   trc.Model,
			Limit: trc.Cells,
			Make: func(ctx *netsim.Ctx, i uint64) *netsim.Packet {
				vc := trc.VCs[int(i)%len(trc.VCs)]
				c := &atm.Cell{Header: atm.Header{VPI: vc.VPI, VCI: vc.VCI}}
				if trc.CLP1 > 0 && ctx.RNG().Bool(trc.CLP1) {
					c.CLP = 1
				}
				c.Seq = r.nextSeq
				r.nextSeq++
				r.Offered++
				c.StampSeq()
				coverHeaderHit(hdrVPI, hdrVCI, hdrPTI, hdrCLP0, hdrCLP1, c.Header)
				return ctx.Net().NewPacket("cell", c, atm.CellBytes*8)
			},
		}
		srcNode := r.Net.Node(fmt.Sprintf("src%d", p), src)
		p := p
		split := r.Net.Node(fmt.Sprintf("split%d", p), &netsim.Func{
			OnArrival: func(ctx *netsim.Ctx, pkt *netsim.Packet, port int) {
				cell := pkt.Data.(*atm.Cell)
				ctx.Send(ctx.Net().NewPacket("cell", cell.Clone(), pkt.Size), 0)
				ctx.Send(ctx.Net().NewPacket("cell", cell.Clone(), pkt.Size), 1)
			},
		})
		r.Net.Connect(srcNode, 0, split, 0, netsim.LinkParams{})
		r.Net.Connect(split, 0, refNode, p, netsim.LinkParams{})
		r.Net.Connect(split, 1, ifaceNode, p, netsim.LinkParams{})
	}
	return r, nil
}

// Run executes the verification, then flushes remaining hardware output
// through one final sync-triggered test cycle batch.
func (r *BoardRig) Run(until sim.Time) error {
	tr := r.Cfg.Trace
	tr.Begin(obs.TrackBoard, "run", int64(r.Net.Sched.Now()))
	r.Net.Run(until)
	tr.End(obs.TrackBoard, "run", int64(r.Net.Sched.Now()))
	coupling := r.Iface.Coupling
	resps, err := coupling.Send(ipc.Message{Kind: ipc.KindSync, Time: until})
	if err != nil {
		return err
	}
	for _, m := range resps {
		var img [atm.CellBytes]byte
		copy(img[:], m.Data)
		cell, err := atm.Unmarshal(img)
		if err != nil {
			return err
		}
		r.Cmp.Actual(int(m.Kind-KindCellOut(0)), cell)
	}
	// The board comparator is driven directly (no per-cell compare hook),
	// so its verdict coverage folds in once from the end-of-run totals.
	r.coverCmp.Add("match", r.Cmp.Matched)
	r.coverCmp.Add("mismatch", uint64(len(r.Cmp.Mismatches())))
	r.publishObs()
	return nil
}

// publishObs writes the end-of-run board figures into the registry: the
// test-cycle count and the split between hardware activity and SCSI
// software activity that govern the real-time fraction of §3.3.
func (r *BoardRig) publishObs() {
	reg := r.Cfg.Metrics
	if reg == nil {
		return
	}
	reg.Gauge("coverify.offered").Set(float64(r.Offered))
	reg.Gauge("coverify.cmp.matched").Set(float64(r.Cmp.Matched))
	reg.Gauge("coverify.cmp.mismatches").Set(float64(len(r.Cmp.Mismatches())))
	reg.Gauge("board.test_cycles").Set(float64(r.Board.TestCycles))
	reg.Gauge("board.hw_time_ps").Set(float64(r.Board.HWTime))
	reg.Gauge("board.sw_time_ps").Set(float64(r.Board.SWTime))
	reg.Gauge("board.rt_fraction").Set(r.Board.RealTimeFraction())
}

// Report summarizes the hardware-in-the-loop run including board timing.
func (r *BoardRig) Report() string {
	return fmt.Sprintf("offered=%d %s drops=%d | %s", r.Offered, r.Cmp.Summary(), r.Dev.Drops(), r.Board)
}
