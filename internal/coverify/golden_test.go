package coverify

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"castanet/internal/atm"
	"castanet/internal/conformance"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

// Golden conformance-vector tests: the checked-in files under testdata/
// pin the standardized vector set and the bit-exact end state the rigs
// must reproduce for it. Regenerate them after an intentional change with
//
//	go test ./internal/coverify -run TestGolden -update
//
// and review the diff like any other code change — an unexplained delta
// in a golden file is a behavioural regression, not noise.
var update = flag.Bool("update", false, "rewrite golden files under testdata/")

func goldenCompare(t *testing.T, path string, got string) {
	t.Helper()
	full := filepath.Join("testdata", path)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden:\n-- got --\n%s-- want --\n%s", path, got, want)
	}
}

// goldenVC is the known connection all golden vectors address.
var goldenVC = atm.VC{VPI: 1, VCI: 10}

// TestGoldenConformanceSuite pins the standardized vector set: the
// 53-octet images, their names, and their pass/discard expectations must
// not drift, because boards and external tools replay this exact file.
func TestGoldenConformanceSuite(t *testing.T) {
	suite := conformance.StandardSuite(goldenVC)
	var b strings.Builder
	if err := suite.Write(&b); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "conformance_standard.txt", b.String())

	// The serialized form must read back bit-identically — the file
	// format is the interchange contract.
	back, err := conformance.Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Vectors) != len(suite.Vectors) {
		t.Fatalf("round trip lost vectors: %d -> %d", len(suite.Vectors), len(back.Vectors))
	}
	for i, v := range back.Vectors {
		w := suite.Vectors[i]
		if v.Name != w.Name || v.Image != w.Image || v.ExpectDiscard != w.ExpectDiscard {
			t.Errorf("vector %d changed across serialization: %+v != %+v", i, v, w)
		}
	}
}

// TestGoldenAcctConformance replays the golden vector file through the
// accounting rig and pins the complete end state. The in-run assertion is
// bit-exactness: every hardware counter must equal the reference meter's.
func TestGoldenAcctConformance(t *testing.T) {
	suite := conformance.StandardSuite(goldenVC)
	rig := NewAcctRig(AcctRigConfig{
		Seed:   7,
		VCs:    []atm.VC{goldenVC, {VPI: 2, VCI: 20}},
		Tariff: atm.Tariff{CellsPerUnit: 5},
		Sources: []AcctSource{
			{Model: traffic.NewCBR(100e3), VC: 1, Cells: 40},
			{Model: traffic.NewCBR(90e3), VC: -1, Cells: 10},
		},
	})
	at := sim.Microsecond
	for i := range suite.Vectors {
		rig.InjectVector(at, suite.Vectors[i].Image)
		at += 60 * sim.Microsecond
	}
	if err := rig.Run(3 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if m := rig.Compare(); len(m) != 0 {
		t.Fatalf("hardware counters diverged from the reference: %+v", m)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# acct end state: golden vectors + fixed stochastic phase, seed 7\n")
	fmt.Fprintf(&b, "%s\n", rig.Report())
	for _, vc := range rig.Cfg.VCs {
		rec, _ := rig.Ref.Record(vc)
		refU, dutU := rig.Units(vc)
		fmt.Fprintf(&b, "vc=%s cells=%d clp1=%d units_ref=%d units_dut=%d\n",
			vc, rec.Cells, rec.CLP1Cells, refU, dutU)
	}
	fmt.Fprintf(&b, "unregistered_ref=%d unregistered_dut=%d\n", rig.Ref.Unregistered, rig.DUT.Unregistered)
	goldenCompare(t, "acct_conformance.txt", b.String())
}

// TestGoldenSwitchReport pins the switch rig's deterministic end-of-run
// report for a fixed seed and workload: cell counts, per-engine event
// totals, clock cycles. The in-run assertion is again bit-exactness —
// the refmodel comparator must end clean.
func TestGoldenSwitchReport(t *testing.T) {
	cfg := SwitchRigConfig{Seed: 11}
	for p := 0; p < 4; p++ {
		cfg.Traffic[p] = PortTraffic{
			Model: traffic.NewCBR(100e3),
			VCs:   PortVCs(p),
			Cells: 24,
		}
	}
	rig := NewSwitchRig(cfg)
	if err := rig.Run(2 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !rig.Cmp.Clean() {
		t.Fatalf("comparison not clean: %s", rig.Cmp.Summary())
	}
	goldenCompare(t, "switch_report.txt", rig.Report()+"\n")
}
