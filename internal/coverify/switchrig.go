// Package coverify assembles the complete Fig.-1 co-verification
// environments: traffic sources in the network simulator feeding both the
// algorithmic reference model and — through the CASTANET coupling — the
// register-transfer-level device under test, with the comparison engine
// checking every hardware response against the reference. It is the
// top-level API the examples, the command-line tool and the benchmark
// harnesses build on.
package coverify

import (
	"fmt"
	"io"
	"strings"
	"time"

	"castanet/internal/atm"
	"castanet/internal/cosim"
	"castanet/internal/dut"
	"castanet/internal/hdl"
	"castanet/internal/ipc"
	"castanet/internal/mapping"
	"castanet/internal/netsim"
	"castanet/internal/obs"
	"castanet/internal/refmodel"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

// Message kind layout of the switch coupling: one input queue per switch
// input port, one response kind per output port.
const (
	kindCellIn  = ipc.KindUser      // +port, 4 input queues
	kindCellOut = ipc.KindUser + 16 // +port, 4 response kinds
)

// KindCellIn returns the message kind of input port p.
func KindCellIn(p int) ipc.Kind { return kindCellIn + ipc.Kind(p) }

// KindCellOut returns the response kind of output port p.
func KindCellOut(p int) ipc.Kind { return kindCellOut + ipc.Kind(p) }

// PortTraffic configures the workload offered to one switch input port.
type PortTraffic struct {
	Model traffic.Model // inter-arrival process; nil = silent port
	VCs   []atm.VC      // connections cycled round-robin
	CLP1  float64       // fraction of cells sent with CLP=1
	Cells uint64        // number of cells to emit
}

// SwitchRigConfig parameterizes a switch co-verification run.
type SwitchRigConfig struct {
	Seed        uint64
	ClockPeriod sim.Duration // HDL byte clock; default 50ns (20 MHz)
	Delta       sim.Duration // δ_j processing window; default 64 clocks
	Switch      dut.SwitchConfig
	Table       *atm.Translator
	Traffic     [dut.SwitchPorts]PortTraffic
	// Remote couples over an in-process socket pair with an EntityServer
	// goroutine instead of direct calls.
	Remote bool
	// Fault, when non-nil, injects deterministic link faults on the client
	// side of a Remote coupling (drops, duplication, corruption,
	// partitions). Requires Remote.
	Fault *ipc.FaultConfig
	// Reliable, when non-nil, layers the reliability envelope over both
	// ends of a Remote coupling so injected faults are recovered
	// transparently. Requires Remote.
	Reliable *ipc.ReliableConfig
	// Deadline arms the coupling watchdogs: the client Remote tears the
	// link down when one request/response round trip exceeds it, and the
	// EntityServer declares the client gone after the same silence. Zero
	// disables both.
	Deadline time.Duration
	// SyncEvery overrides the periodic time-update interval.
	SyncEvery sim.Duration
	// Batch coalesces all coupling messages of one network instant into a
	// single δ-window unit (one wire frame, one acknowledgement) — see
	// cosim.InterfaceProcess.Batch. Event orderings are unchanged; only
	// the per-message round trips are amortized.
	Batch bool
	// NoCompiled keeps the HDL simulator on the plain nine-value event
	// kernel instead of the compiled bit-parallel data plane (hdl.Compile,
	// DESIGN.md §18). Observables are byte-identical either way — the flag
	// exists for differential testing and as the -no-compiled opt-out.
	NoCompiled bool
	// Waveforms, when non-nil, receives a VCD dump of the DUT's external
	// ports — the HDL-side waveform debugging window of Fig. 2.
	Waveforms io.Writer
	// Metrics, when non-nil, receives the run's counters and gauges: the
	// network scheduler, HDL kernel, co-simulation entity/interface,
	// transport envelopes and the comparison engine all register under it
	// (naming scheme in DESIGN.md §10).
	Metrics *obs.Registry
	// Cover, when non-nil, receives the run's functional coverage: cell
	// header bins (VPI/VCI/PTI/CLP), comparison verdicts, DUT queue-depth
	// bands and drop causes, and the coupling's sync-window extremes
	// (DESIGN.md §15). Every handle is nil-safe, so the rig instruments
	// unconditionally at ~0 ns when coverage is off.
	Cover *obs.CoverRegistry
	// Profile, when non-nil, receives the run's simulation profile: the
	// HDL kernel's deterministic activity attribution (per-signal events,
	// two-state purity, per-process runs and delta churn) is attached as a
	// live source, and the co-simulation entity and interface attribute
	// their wall-clock phase times (HDL execution, encode/decode,
	// transport) into its phase profile. Nil-safe like every obs handle.
	Profile *obs.RunProfile
	// Trace, when non-nil, records run-scoped events (δ-windows, coupling
	// messages, rig phases) for Chrome trace-event export.
	Trace *obs.Tracer
	// Cells, when non-nil, records the causal per-hop journey of sampled
	// cells (trace ID = cell Seq + 1) from traffic-source enqueue to the
	// comparison engine; waterfalls surface in FailureDigest and as
	// Chrome-trace flow arrows.
	Cells *obs.CellTracker
	// Recorder, when non-nil, keeps the rig's flight-recorder ring:
	// coupling failures, protocol anomalies and comparison mismatches are
	// noted as they happen and dumped by FailureDigest.
	Recorder *obs.Recorder
	// TamperResponse, when non-nil, mutates every DUT response cell before
	// comparison — a verify-the-verifier hook that induces deterministic
	// mismatches so digests, waterfalls and recorder dumps can be exercised
	// end to end.
	TamperResponse func(c *atm.Cell)
}

// DefaultTable returns a full-mesh connection table: each input port p
// owns VCs {VPI:p+1, VCI:100+q} routed to output q with translated
// headers.
func DefaultTable() *atm.Translator {
	tb := atm.NewTranslator()
	for p := 0; p < dut.SwitchPorts; p++ {
		for q := 0; q < dut.SwitchPorts; q++ {
			in := atm.VC{VPI: byte(p + 1), VCI: uint16(100 + q)}
			out := atm.VC{VPI: byte(0x10 + p), VCI: uint16(0x200 + 16*p + q)}
			tb.Add(in, atm.Route{Port: q, Out: out})
		}
	}
	return tb
}

// PortVCs returns input port p's connections in the DefaultTable layout.
func PortVCs(p int) []atm.VC {
	vcs := make([]atm.VC, dut.SwitchPorts)
	for q := 0; q < dut.SwitchPorts; q++ {
		vcs[q] = atm.VC{VPI: byte(p + 1), VCI: uint16(100 + q)}
	}
	return vcs
}

// SwitchRig is an elaborated switch co-verification environment.
type SwitchRig struct {
	Cfg SwitchRigConfig

	Net    *netsim.Network
	HDL    *hdl.Simulator
	DUT    *dut.Switch
	Ref    *refmodel.SwitchRef
	Entity *cosim.Entity
	Iface  *cosim.InterfaceProcess
	Cmp    *refmodel.Comparator

	writers  [dut.SwitchPorts]*mapping.CellPortWriter
	sources  [dut.SwitchPorts]*netsim.Source
	nextSeq  uint32
	injected map[uint32]sim.Time // seq -> injection time, for latency probes

	srv       *cosim.EntityServer
	transport ipc.Transport
	remote    *cosim.Remote
	srvDone   chan error
	closeErr  error
	vcd       *hdl.VCD

	// FaultLink is the fault injector on the client side of a Remote
	// coupling (nil unless Cfg.Fault is set) — Partition/Heal/Stats live
	// here.
	FaultLink *ipc.FaultTransport
	// RelClient is the client-side reliability envelope (nil unless
	// Cfg.Reliable is set); its Stats expose retransmit counts.
	RelClient *ipc.ReliableTransport

	// Probes collects run statistics: "hw.latency" is the per-cell
	// traversal time through the hardware (network injection to hardware
	// response, seconds) — the network simulator's analysis capabilities
	// applied to the hardware's behaviour.
	Probes *netsim.ProbeSet

	// Offered counts cells injected into the environment.
	Offered uint64

	// runWall accumulates the wall-clock time spent inside Run, feeding the
	// sim-rate gauges and the profile's whole-run total (telemetry only —
	// wall time never enters a deterministic artifact).
	runWall time.Duration

	// coverMatch/coverMismatch bin comparison verdicts when the rig
	// carries a cover registry: cached bin handles, so the per-cell hot
	// path is one counter increment with no label lookup. Nil-safe like
	// every obs handle.
	coverMatch    *obs.CoverHit
	coverMismatch *obs.CoverHit
}

// coverHeaderPoints defines the shared cell-header cover group on c and
// returns the stamp-site handles (all nil when c is nil). SwitchRig and
// BoardRig sources both stamp headers through it, so the two rigs report
// against one schema.
func coverHeaderPoints(c *obs.CoverRegistry) (vpi, vci, pti *obs.CoverPoint, clp0, clp1 *obs.CoverHit) {
	g := c.Group("coverify.cell_header")
	vpi = g.Range("vpi", 1, 2, 4, 8, 16)
	vci = g.Range("vci", 63, 127, 255, 1023)
	pti = g.Range("pti", 0, 3, 7)
	clp := g.Point("clp", "clp0", "clp1")
	return vpi, vci, pti, clp.Handle("clp0"), clp.Handle("clp1")
}

// coverHeaderHit bins one stamped cell header.
func coverHeaderHit(vpi, vci, pti *obs.CoverPoint, clp0, clp1 *obs.CoverHit, h atm.Header) {
	vpi.Observe(int64(h.VPI))
	vci.Observe(int64(h.VCI))
	pti.Observe(int64(h.PTI))
	if h.CLP != 0 {
		clp1.Hit()
	} else {
		clp0.Hit()
	}
}

// coverCmpPoint defines the shared comparison-verdict cover point.
func coverCmpPoint(c *obs.CoverRegistry) *obs.CoverPoint {
	return c.Group("coverify.cmp").Point("verdict", "match", "mismatch")
}

// NewSwitchRig elaborates the complete environment.
func NewSwitchRig(cfg SwitchRigConfig) *SwitchRig {
	if cfg.ClockPeriod == 0 {
		cfg.ClockPeriod = 50 * sim.Nanosecond
	}
	if cfg.Delta == 0 {
		cfg.Delta = 64 * cfg.ClockPeriod
	}
	if cfg.Table == nil {
		cfg.Table = DefaultTable()
	}
	if cfg.Switch == (dut.SwitchConfig{}) {
		cfg.Switch = dut.DefaultSwitchConfig()
	}
	if cfg.SyncEvery == 0 {
		cfg.SyncEvery = 50 * sim.Microsecond
	}
	r := &SwitchRig{Cfg: cfg, injected: make(map[uint32]sim.Time)}
	hdrVPI, hdrVCI, hdrPTI, hdrCLP0, hdrCLP1 := coverHeaderPoints(cfg.Cover)
	cmpPoint := coverCmpPoint(cfg.Cover)
	r.coverMatch = cmpPoint.Handle("match")
	r.coverMismatch = cmpPoint.Handle("mismatch")

	// Hardware side: switch DUT plus the co-simulation entity.
	r.HDL = hdl.New()
	r.HDL.Instrument(cfg.Metrics, "hdl.sim")
	if cfg.Profile != nil {
		cfg.Profile.AttachActivitySource(r.HDL.EnableProfile().Snapshot)
	}
	clk := r.HDL.Bit("clk", hdl.U)
	r.HDL.Clock(clk, cfg.ClockPeriod)
	r.DUT = dut.NewSwitch(r.HDL, clk, cfg.Table, cfg.Switch)
	r.DUT.InstrumentCover(cfg.Cover)
	r.Entity = cosim.NewEntity(r.HDL)
	r.Entity.Instrument(cfg.Metrics, cfg.Trace)
	r.Entity.InstrumentCover(cfg.Cover)
	r.Entity.InstrumentProfile(cfg.Profile.PhaseProf())
	r.Entity.Cells = cfg.Cells
	r.Entity.Recorder = cfg.Recorder
	for p := 0; p < dut.SwitchPorts; p++ {
		p := p
		w := mapping.NewCellPortWriter(r.HDL, fmt.Sprintf("castanet_tx%d", p), clk,
			r.DUT.In[p].Data, r.DUT.In[p].Sync)
		r.writers[p] = w
		if cfg.Cells.Enabled() {
			// The Seq stamp rides the first four payload octets of the
			// 53-octet image (Cell.StampSeq), so the hdl.commit hop can be
			// recovered from the raw bytes as they hit the wire.
			w.OnCellStart = func(img [atm.CellBytes]byte) {
				seq := uint32(img[atm.HeaderBytes])<<24 | uint32(img[atm.HeaderBytes+1])<<16 |
					uint32(img[atm.HeaderBytes+2])<<8 | uint32(img[atm.HeaderBytes+3])
				cfg.Cells.Hop(uint64(seq)+1, obs.HopHDLCommit, int64(r.HDL.Now()))
			}
		}
		r.Entity.Input(KindCellIn(p), cfg.Delta, func(e *cosim.Entity, msg ipc.Message) error {
			v, err := (mapping.CellCodec{}).Decode(msg.Data)
			if err != nil {
				return err
			}
			w.Enqueue(v.(*atm.Cell))
			return nil
		})
		rd := mapping.NewCellPortReader(r.HDL, fmt.Sprintf("castanet_rx%d", p), clk,
			r.DUT.Out[p].Data, r.DUT.Out[p].Sync)
		rd.SkipIdle = true
		rd.OnCell = func(c *atm.Cell) {
			data, err := (mapping.CellCodec{}).Encode(c)
			if err != nil {
				panic(err)
			}
			if id := uint64(c.Seq) + 1; cfg.Cells.Sampled(id) {
				r.Entity.EmitTraced(KindCellOut(p), data, id)
			} else {
				r.Entity.Emit(KindCellOut(p), data)
			}
		}
	}

	if cfg.Waveforms != nil {
		var watch []*hdl.Signal
		watch = append(watch, clk)
		for p := 0; p < dut.SwitchPorts; p++ {
			watch = append(watch, r.DUT.In[p].Data, r.DUT.In[p].Sync,
				r.DUT.Out[p].Data, r.DUT.Out[p].Sync)
		}
		r.vcd = hdl.NewVCD(cfg.Waveforms, r.HDL, watch...)
	}

	// Coupling. The client stack is Reliable(Fault(pipe)): faults are
	// injected under the envelope, so the envelope must recover them.
	var coupling cosim.Coupling
	if cfg.Remote {
		a, b := ipc.Pipe(64)
		var ct, st ipc.Transport = a, b
		if cfg.Fault != nil {
			r.FaultLink = ipc.NewFault(a, *cfg.Fault)
			r.FaultLink.Instrument(cfg.Metrics, "ipc.fault")
			ct = r.FaultLink
		}
		if cfg.Reliable != nil {
			r.RelClient = ipc.NewReliable(ct, *cfg.Reliable)
			r.RelClient.Instrument(cfg.Metrics, "ipc.reliable")
			ct = r.RelClient
			st = ipc.NewReliable(b, *cfg.Reliable)
		}
		r.transport = ct
		r.remote = &cosim.Remote{Transport: ct, Deadline: cfg.Deadline}
		r.srv = &cosim.EntityServer{Entity: r.Entity, Transport: st, Watchdog: cfg.Deadline}
		r.srvDone = make(chan error, 1)
		go func() { r.srvDone <- r.srv.Serve() }()
		coupling = r.remote
	} else {
		coupling = &cosim.Direct{Entity: r.Entity}
	}

	// Network side.
	r.Net = netsim.New(cfg.Seed)
	r.Net.Sched.Instrument(cfg.Metrics, "net.sched")
	r.Probes = netsim.NewProbeSet()
	latency := r.Probes.Get("hw.latency")
	r.Cmp = refmodel.NewComparator()
	r.Ref = &refmodel.SwitchRef{Table: cfg.Table}
	r.Ref.OnForward = func(ctx *netsim.Ctx, outPort int, c *atm.Cell) {
		r.Cmp.Expect(outPort, c)
	}
	registry := mapping.NewRegistry()
	for p := 0; p < dut.SwitchPorts; p++ {
		registry.Register(KindCellIn(p), mapping.CellCodec{})
		registry.Register(KindCellOut(p), mapping.CellCodec{})
	}
	r.Iface = &cosim.InterfaceProcess{
		Coupling:  coupling,
		Registry:  registry,
		SyncEvery: cfg.SyncEvery,
		Batch:     cfg.Batch,
		Cells:     cfg.Cells,
		Recorder:  cfg.Recorder,
		Classify:  func(pkt *netsim.Packet, port int) ipc.Kind { return KindCellIn(port) },
		TraceOf: func(pkt *netsim.Packet, port int) uint64 {
			if c, ok := pkt.Data.(*atm.Cell); ok {
				return uint64(c.Seq) + 1
			}
			return 0
		},
		OnResponse: func(ctx *netsim.Ctx, resp cosim.Response) {
			port := int(resp.Kind - kindCellOut)
			cell, ok := resp.Value.(*atm.Cell)
			if !ok {
				panic(fmt.Sprintf("coverify: response kind %d carried %T", resp.Kind, resp.Value))
			}
			if t, known := r.injected[cell.Seq]; known {
				latency.Record(ctx.Now(), (resp.HWTime - t).Seconds())
			}
			r.compare(port, cell, int64(ctx.Now()))
		},
	}
	r.Iface.Instrument(cfg.Metrics, cfg.Trace)
	r.Iface.InstrumentCover(cfg.Cover)
	r.Iface.InstrumentProfile(cfg.Profile.PhaseProf())

	refNode := r.Net.Node("refswitch", r.Ref)
	ifaceNode := r.Net.Node("castanet", r.Iface)
	for p := 0; p < dut.SwitchPorts; p++ {
		tr := cfg.Traffic[p]
		if tr.Model == nil || tr.Cells == 0 {
			continue
		}
		p := p
		trc := tr
		src := &netsim.Source{
			Gen:   trc.Model,
			Limit: trc.Cells,
			Make: func(ctx *netsim.Ctx, i uint64) *netsim.Packet {
				vc := trc.VCs[int(i)%len(trc.VCs)]
				c := &atm.Cell{Header: atm.Header{VPI: vc.VPI, VCI: vc.VCI}}
				if trc.CLP1 > 0 && ctx.RNG().Bool(trc.CLP1) {
					c.CLP = 1
				}
				c.Seq = r.nextSeq
				r.nextSeq++
				r.Offered++
				// Fill a recognizable payload beyond the seq stamp.
				for b := 4; b < len(c.Payload); b++ {
					c.Payload[b] = byte(uint32(b) * (c.Seq + 1))
				}
				c.StampSeq()
				coverHeaderHit(hdrVPI, hdrVCI, hdrPTI, hdrCLP0, hdrCLP1, c.Header)
				r.injected[c.Seq] = ctx.Now()
				cfg.Cells.Hop(uint64(c.Seq)+1, obs.HopNetEnqueue, int64(ctx.Now()))
				return ctx.Net().NewPacket("cell", c, atm.CellBytes*8)
			},
		}
		r.sources[p] = src
		srcNode := r.Net.Node(fmt.Sprintf("src%d", p), src)
		// Splitter duplicates each cell to the reference model and to the
		// hardware coupling.
		split := r.Net.Node(fmt.Sprintf("split%d", p), &netsim.Func{
			OnArrival: func(ctx *netsim.Ctx, pkt *netsim.Packet, port int) {
				cell := pkt.Data.(*atm.Cell)
				refPkt := ctx.Net().NewPacket("cell", cell.Clone(), pkt.Size)
				ctx.Send(refPkt, 0)
				hwPkt := ctx.Net().NewPacket("cell", cell.Clone(), pkt.Size)
				ctx.Send(hwPkt, 1)
			},
		})
		r.Net.Connect(srcNode, 0, split, 0, netsim.LinkParams{})
		r.Net.Connect(split, 0, refNode, p, netsim.LinkParams{})
		r.Net.Connect(split, 1, ifaceNode, p, netsim.LinkParams{})
	}
	if !cfg.NoCompiled {
		r.HDL.MustCompile()
	}
	return r
}

// Run executes the co-verification for the given horizon, lets the
// network simulation continue through a drain margin so that responses
// produced inside late δ-windows (whose hardware stamps may exceed the
// horizon) are still delivered, then flushes the hardware pipeline.
func (r *SwitchRig) Run(until sim.Time) error {
	start := time.Now()
	defer func() {
		wall := time.Since(start)
		r.runWall += wall
		r.Cfg.Profile.PhaseProf().AddTotal(wall)
		r.publishRates()
	}()
	tr := r.Cfg.Trace
	r.Cfg.Recorder.Note("rig", int64(r.Net.Sched.Now()), "run to horizon %v", until)
	tr.Begin(obs.TrackRig, "run", int64(r.Net.Sched.Now()))
	r.Net.Run(until)
	if err := r.Iface.Err(); err != nil {
		return err
	}
	tr.End(obs.TrackRig, "run", int64(r.Net.Sched.Now()))
	tr.Begin(obs.TrackRig, "drain", int64(r.Net.Sched.Now()))
	r.Cfg.Recorder.Note("rig", int64(r.Net.Sched.Now()), "horizon reached, draining")
	margin := r.drainMargin()
	r.Net.Sched.RunUntil(until + margin)
	if err := r.Iface.Err(); err != nil {
		return err
	}
	err := r.Drain(until + margin)
	tr.End(obs.TrackRig, "drain", int64(r.Net.Sched.Now()))
	r.publishObs()
	return err
}

// publishObs writes the end-of-run verification figures into the registry:
// how many cells the environment offered, what the comparison engine saw,
// and the final protocol lag bound.
func (r *SwitchRig) publishObs() {
	reg := r.Cfg.Metrics
	if reg == nil {
		return
	}
	reg.Gauge("coverify.offered").Set(float64(r.Offered))
	reg.Gauge("coverify.cmp.matched").Set(float64(r.Cmp.Matched))
	reg.Gauge("coverify.cmp.mismatches").Set(float64(len(r.Cmp.Mismatches())))
	reg.Gauge("coverify.dut_delivered").Set(float64(r.DUTDelivered()))
	reg.Gauge("coverify.clock_cycles").Set(float64(r.ClockCycles()))
	reg.Gauge("cosim.entity.max_lag_ps").Set(float64(r.Entity.MaxLag))
}

// publishRates writes the sim-rate gauges: simulated work per wall-clock
// second, the co-simulation speed figures an operator watches on /profile.
// The ".rate." name segment is the convention the telemetry server extracts.
func (r *SwitchRig) publishRates() {
	reg := r.Cfg.Metrics
	if reg == nil {
		return
	}
	w := r.runWall.Seconds()
	if w <= 0 {
		return
	}
	reg.Gauge("coverify.rate.cells_per_sec").Set(float64(r.DUTDelivered()) / w)
	reg.Gauge("coverify.rate.signal_events_per_sec").Set(float64(r.HDL.Events()) / w)
	reg.Gauge("coverify.rate.clk_cycles_per_sec").Set(float64(r.ClockCycles()) / w)
}

// ActivitySnapshot returns the HDL kernel's deterministic activity profile
// (empty unless Cfg.Profile enabled it).
func (r *SwitchRig) ActivitySnapshot() obs.ActivitySnap {
	return r.HDL.Profile().Snapshot()
}

// RunWall returns the accumulated wall-clock time spent inside Run.
func (r *SwitchRig) RunWall() time.Duration { return r.runWall }

// drainMargin is a generous bound on how long in-flight cells can linger:
// every FIFO in the switch emptied at line rate, several times over.
func (r *SwitchRig) drainMargin() sim.Duration {
	return sim.Duration(4*(r.Cfg.Switch.InFifoCells+r.Cfg.Switch.OutFifoCells+8)) *
		53 * r.Cfg.ClockPeriod
}

// Drain grants the hardware a final window past the network horizon so
// in-flight cells settle, and collects the last responses.
func (r *SwitchRig) Drain(until sim.Time) error {
	r.Entity.FreezeLagStats = true
	final := ipc.Message{Kind: ipc.KindSync, Time: until + r.drainMargin()}
	var resps []ipc.Message
	if r.Cfg.Remote {
		out, err := r.remote.Send(final)
		if err != nil {
			return err
		}
		resps = out
	} else {
		if err := r.Entity.Deliver(final); err != nil {
			return err
		}
		resps = r.Entity.TakeOutbox()
	}
	for _, m := range resps {
		v, err := (mapping.CellCodec{}).Decode(m.Data)
		if err != nil {
			return err
		}
		r.compare(int(m.Kind-kindCellOut), v.(*atm.Cell), int64(m.Time))
	}
	if r.vcd != nil {
		return r.vcd.Close()
	}
	return nil
}

// compare feeds one DUT response cell into the comparison engine,
// closing the cell's causal waterfall at the compare hop and noting any
// fresh mismatch in the flight recorder. The TamperResponse hook (test
// instrumentation) is applied first, so an induced fault takes the same
// triage path as a real one.
func (r *SwitchRig) compare(port int, c *atm.Cell, simPS int64) {
	if r.Cfg.TamperResponse != nil {
		r.Cfg.TamperResponse(c)
	}
	id := uint64(c.Seq) + 1
	r.Cfg.Cells.Hop(id, obs.HopCompare, simPS)
	before := len(r.Cmp.Mismatches())
	r.Cmp.Actual(port, c)
	if ms := r.Cmp.Mismatches(); len(ms) > before {
		m := ms[len(ms)-1]
		r.Cfg.Recorder.NoteCell(uint64(m.Seq)+1, "cmp", simPS, "port %d: %s", port, m)
		r.coverMismatch.Hit()
	} else {
		r.coverMatch.Hit()
	}
}

// FailureDigest renders the rig's triage bundle after a failed or
// unclean run: the first comparison mismatch with its cell's trace ID and
// per-hop waterfall, followed by the flight-recorder dump. Everything in
// it derives from simulated time and seed-determined state, so a replay
// of the same run produces the same digest. Returns "" when there is
// nothing to report.
func (r *SwitchRig) FailureDigest() string {
	var b strings.Builder
	if ms := r.Cmp.Mismatches(); len(ms) > 0 {
		m := ms[0]
		id := uint64(m.Seq) + 1
		fmt.Fprintf(&b, "first mismatch: %s (trace=0x%x)\n", m, id)
		if tr, ok := r.Cfg.Cells.Trace(id); ok {
			b.WriteString(obs.WaterfallText(tr))
		} else if r.Cfg.Cells.Enabled() {
			fmt.Fprintf(&b, "cell trace 0x%x not sampled (tracing every %d cells)\n",
				id, r.Cfg.Cells.Every())
		}
	}
	b.WriteString(r.Cfg.Recorder.Dump())
	return b.String()
}

// Close shuts down a remote coupling. It is idempotent: repeated calls
// return the server's first exit status instead of blocking on the
// already-drained completion channel.
func (r *SwitchRig) Close() error {
	if r.transport != nil {
		r.transport.Close()
		if r.srvDone != nil {
			r.closeErr = <-r.srvDone
			r.srvDone = nil
		}
	}
	return r.closeErr
}

// DUTDelivered returns the number of cells that emerged from the DUT.
func (r *SwitchRig) DUTDelivered() uint64 {
	return r.Cmp.Matched + uint64(len(r.Cmp.Mismatches()))
}

// ClockCycles returns how many HDL byte-clock cycles were simulated.
func (r *SwitchRig) ClockCycles() uint64 {
	return uint64(r.HDL.Now() / r.Cfg.ClockPeriod)
}

// Report summarizes the run for harness output.
func (r *SwitchRig) Report() string {
	return fmt.Sprintf("offered=%d refFwd=%d dut=%d drops=%d unknown=%d | %s | hdlEvents=%d netEvents=%d cycles=%d",
		r.Offered, r.refForwardTotal(), r.DUTDelivered(), r.DUT.Drops(), r.DUT.UnknownVC,
		r.Cmp.Summary(), r.HDL.Events(), r.Net.Sched.Executed(), r.ClockCycles())
}

func (r *SwitchRig) refForwardTotal() uint64 {
	var t uint64
	for _, f := range r.Ref.Forwarded {
		t += f
	}
	return t
}
