package coverify

import (
	"strings"
	"testing"

	"castanet/internal/sim"
	"castanet/internal/traffic"
)

func TestRTLRigRegression(t *testing.T) {
	rig := NewRTLRig(SwitchRigConfig{
		Seed:    1,
		Traffic: lightTraffic(40),
	})
	if err := rig.Run(); err != nil {
		t.Fatal(err)
	}
	if rig.Offered != 160 {
		t.Fatalf("offered = %d", rig.Offered)
	}
	if rig.Checked() != 160 {
		t.Errorf("checked = %d, want 160 (%s)", rig.Checked(), rig.Report())
	}
	if rig.CheckErrors() != 0 {
		t.Errorf("checker errors = %d", rig.CheckErrors())
	}
	if rig.DUT.Drops() != 0 {
		t.Errorf("drops = %d", rig.DUT.Drops())
	}
}

func TestRTLRigMoreEventsThanCosim(t *testing.T) {
	// The paper's E1 claim, as a correctness-level assertion: for the same
	// offered traffic, the pure-RTL test bench evaluates substantially
	// more HDL events than the co-simulation run.
	// Horizon sized to the traffic: 30 cells at 50 kcell/s = 0.6 ms. An
	// oversized horizon would make the co-simulation clock idle through
	// dead time and bias the comparison.
	cfg := SwitchRigConfig{Seed: 2, Traffic: lightTraffic(30)}
	co := NewSwitchRig(cfg)
	if err := co.Run(700 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if !co.Cmp.Clean() {
		t.Fatalf("cosim rig not clean: %s", co.Report())
	}
	rtl := NewRTLRig(cfg)
	if err := rtl.Run(); err != nil {
		t.Fatal(err)
	}
	if rtl.Checked() == 0 {
		t.Fatal("RTL rig checked nothing")
	}
	coPerCell := float64(co.HDL.Events()) / float64(co.Cmp.Matched)
	rtlPerCell := float64(rtl.HDL.Events()) / float64(rtl.Checked())
	if rtlPerCell <= coPerCell {
		t.Errorf("RTL TB events/cell %.0f not above cosim %.0f", rtlPerCell, coPerCell)
	}
}

func TestBoardRigHardwareInLoop(t *testing.T) {
	rig, err := NewBoardRig(SwitchRigConfig{
		Seed:    3,
		Traffic: lightTraffic(40),
	}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.Run(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if rig.Offered != 160 {
		t.Fatalf("offered = %d", rig.Offered)
	}
	for _, m := range rig.Cmp.Mismatches() {
		t.Errorf("%v", m)
	}
	if out := rig.Cmp.Outstanding(); len(out) != 0 {
		t.Errorf("%d cells lost in hardware loop (%s)", len(out), rig.Report())
	}
	if rig.Board.TestCycles == 0 {
		t.Error("no hardware test cycles executed")
	}
	if rig.Board.HWTime == 0 || rig.Board.SWTime == 0 {
		t.Errorf("board activity accounting empty: %v", rig.Board)
	}
}

func TestBoardRigMatchesHDLRig(t *testing.T) {
	// The same test bench verifies the RTL model and the "fabricated"
	// chip: both environments must accept the device (clean comparison)
	// for identical traffic.
	cfg := SwitchRigConfig{Seed: 4, Traffic: lightTraffic(25)}
	hdlRig := NewSwitchRig(cfg)
	if err := hdlRig.Run(8 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	boardRig, err := NewBoardRig(cfg, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := boardRig.Run(8 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !hdlRig.Cmp.Clean() {
		t.Errorf("HDL rig not clean: %s", hdlRig.Report())
	}
	if !boardRig.Cmp.Clean() {
		t.Errorf("board rig not clean: %s", boardRig.Report())
	}
	if hdlRig.Cmp.Matched != boardRig.Cmp.Matched {
		t.Errorf("matched differ: hdl=%d board=%d", hdlRig.Cmp.Matched, boardRig.Cmp.Matched)
	}
}

func TestBoardRigDetectsInjectedBug(t *testing.T) {
	rig, err := NewBoardRig(SwitchRigConfig{Seed: 5, Traffic: lightTraffic(15)}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Poison the chip's table: swap one route.
	poisoned := DefaultTable()
	in := PortVCs(0)[0]
	route, _ := poisoned.Lookup(in)
	route.Out.VCI ^= 0x01
	poisoned.Remove(in)
	poisoned.Add(in, route)
	rig.Dev.Table = poisoned
	if err := rig.Run(8 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(rig.Cmp.Mismatches()) == 0 {
		t.Fatalf("silicon bug not detected: %s", rig.Report())
	}
}

func TestRTLRigBurstyTrafficCompiles(t *testing.T) {
	var tr [4]PortTraffic
	tr[0] = PortTraffic{Model: traffic.NewPoisson(40e3), VCs: PortVCs(0), Cells: 25}
	tr[2] = PortTraffic{Model: &traffic.OnOff{
		PeakInterval: 20 * sim.Microsecond,
		MeanOn:       500 * sim.Microsecond,
		MeanOff:      500 * sim.Microsecond,
	}, VCs: PortVCs(2), Cells: 25}
	rig := NewRTLRig(SwitchRigConfig{Seed: 6, Traffic: tr})
	if err := rig.Run(); err != nil {
		t.Fatal(err)
	}
	if rig.Checked() != 50 {
		t.Errorf("checked = %d, want 50 (%s)", rig.Checked(), rig.Report())
	}
}

func TestSwitchRigWaveformCapture(t *testing.T) {
	var vcd strings.Builder
	rig := NewSwitchRig(SwitchRigConfig{
		Seed:      8,
		Traffic:   lightTraffic(5),
		Waveforms: &vcd,
	})
	if err := rig.Run(sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	out := vcd.String()
	for _, want := range []string{
		"$enddefinitions $end",
		"port0_rx_data",
		"port3_tx_sync",
		"#", // at least one timestamped change
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	if len(out) < 1000 {
		t.Errorf("VCD suspiciously small: %d bytes", len(out))
	}
}

func TestSwitchRigLatencyProbe(t *testing.T) {
	rig := NewSwitchRig(SwitchRigConfig{Seed: 9, Traffic: lightTraffic(20)})
	if err := rig.Run(5 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	lat := rig.Probes.Get("hw.latency").Stats()
	if lat.N() != 80 {
		t.Fatalf("latency samples = %d, want 80", lat.N())
	}
	// A cell needs at least 53 input clocks + bus + 53 output clocks at
	// 50ns: > 5.3us; and nothing should take longer than a few cell times
	// at this light load.
	if lat.Min() < 5.3e-6 {
		t.Errorf("min latency %v below physical floor", lat.Min())
	}
	if lat.Max() > 50e-6 {
		t.Errorf("max latency %v implausibly high at light load", lat.Max())
	}
}
