package coverify

import (
	"testing"

	"castanet/internal/atm"
	"castanet/internal/conformance"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

func acctConfig(seed uint64) AcctRigConfig {
	vcs := []atm.VC{
		{VPI: 1, VCI: 10},
		{VPI: 1, VCI: 11},
		{VPI: 2, VCI: 20},
	}
	return AcctRigConfig{
		Seed:   seed,
		VCs:    vcs,
		Tariff: atm.Tariff{CellsPerUnit: 10},
		Sources: []AcctSource{
			{Model: traffic.NewCBR(50e3), VC: 0, Cells: 60},
			{Model: traffic.NewPoisson(40e3), VC: 1, Cells: 40, CLP1: 0.5},
			{Model: traffic.NewCBR(30e3), VC: 2, Cells: 30, CLP1: 1.0},
			{Model: traffic.NewPoisson(20e3), VC: -1, Cells: 10}, // unregistered
		},
	}
}

func TestAccountingCoVerification(t *testing.T) {
	rig := NewAcctRig(acctConfig(1))
	if err := rig.Run(3 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if rig.Offered != 140 {
		t.Fatalf("offered = %d", rig.Offered)
	}
	for _, m := range rig.Compare() {
		t.Errorf("counter mismatch: %+v", m)
	}
	if rig.DUT.Observed == 0 {
		t.Fatal("hardware metered nothing")
	}
	// Unregistered traffic must raise hardware exceptions.
	if rig.DUT.Unregistered != 10 {
		t.Errorf("unregistered = %d, want 10", rig.DUT.Unregistered)
	}
	if rig.Exceptions != 10 {
		t.Errorf("exception strobes = %d, want 10", rig.Exceptions)
	}
	// Charging units agree at the billing level.
	for _, vc := range rig.Cfg.VCs {
		ref, dutUnits := rig.Units(vc)
		if ref != dutUnits {
			t.Errorf("units for %v: ref %d, dut %d", vc, ref, dutUnits)
		}
	}
}

func TestAccountingMPEGTrace(t *testing.T) {
	// The paper's motivating stimulus: an MPEG trace driving the
	// hardware. The reference and the RTL unit must agree cell for cell.
	vcs := []atm.VC{{VPI: 5, VCI: 50}}
	cfg := AcctRigConfig{
		Seed:   2,
		VCs:    vcs,
		Tariff: atm.Tariff{CellsPerUnit: 50},
		Sources: []AcctSource{
			{Model: traffic.DefaultMPEG(3 * sim.Microsecond), VC: 0, Cells: 400},
		},
	}
	rig := NewAcctRig(cfg)
	if err := rig.Run(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if rig.Offered != 400 {
		t.Fatalf("offered = %d", rig.Offered)
	}
	if len(rig.Compare()) != 0 {
		t.Fatalf("MPEG run mismatches: %v (%s)", rig.Compare(), rig.Report())
	}
	ref, dutUnits := rig.Units(vcs[0])
	if ref == 0 {
		t.Error("no charging units accumulated over an MPEG trace")
	}
	if ref != dutUnits {
		t.Errorf("units: ref %d, dut %d", ref, dutUnits)
	}
}

func TestAccountingConformanceVectors(t *testing.T) {
	known := atm.VC{VPI: 1, VCI: 10}
	cfg := AcctRigConfig{
		Seed:   3,
		VCs:    []atm.VC{known},
		Tariff: atm.Tariff{CellsPerUnit: 1},
	}
	rig := NewAcctRig(cfg)
	suite := conformance.StandardSuite(known)
	at := sim.Microsecond
	var expectMetered, expectExceptions uint64
	for i := range suite.Vectors {
		v := &suite.Vectors[i]
		rig.InjectVector(at, v.Image)
		at += 200 * sim.Microsecond
		c := v.Cell()
		switch {
		case c == nil:
			// HEC-corrupt: invisible to the meter.
		case c.IsIdle() || c.IsUnassigned():
			// Transparent.
		case c.VC() == known:
			expectMetered++
		default:
			expectExceptions++
		}
	}
	if err := rig.Run(at + sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	slot, _ := rig.DUT.Slot(known)
	if got := uint64(rig.DUT.Counter(slot, false)); got != expectMetered {
		t.Errorf("metered = %d, want %d", got, expectMetered)
	}
	if rig.DUT.Unregistered != expectExceptions {
		t.Errorf("unregistered = %d, want %d", rig.DUT.Unregistered, expectExceptions)
	}
	if rig.Exceptions != expectExceptions {
		t.Errorf("exception strobes = %d, want %d", rig.Exceptions, expectExceptions)
	}
}

func TestAccountingDeterministic(t *testing.T) {
	run := func() string {
		rig := NewAcctRig(acctConfig(77))
		if err := rig.Run(3 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		return rig.Report()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("diverged:\n%s\n%s", a, b)
	}
}
