package coverify

import (
	"testing"

	"castanet/internal/atm"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

func TestPolicerCoVerificationCBR(t *testing.T) {
	// A CBR stream exactly at its contract rate: everything conforms, and
	// reference and hardware agree cell for cell.
	vc := atm.VC{VPI: 1, VCI: 10}
	rig := NewPolicerRig(PolicerRigConfig{
		Seed: 1,
		Contracts: []PolicerContract{
			{VC: vc, PeakInterval: 10 * sim.Microsecond, Tau: 500 * sim.Nanosecond},
		},
		Sources: []PolicerSource{
			{Model: traffic.NewCBR(100e3), VC: vc, Cells: 100}, // exactly 10us spacing
		},
	})
	if err := rig.Run(2 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !rig.Cmp.Clean() {
		t.Fatalf("not clean: %s\nbad: %v", rig.Report(), rig.Cmp.Bad)
	}
	if rig.DUT.NonConforming != 0 || rig.Ref.NonConforming != 0 {
		t.Errorf("violations on a compliant stream: dut=%d ref=%d",
			rig.DUT.NonConforming, rig.Ref.NonConforming)
	}
	if rig.Cmp.Matched != 100 {
		t.Errorf("matched = %d", rig.Cmp.Matched)
	}
}

func TestPolicerCoVerificationViolators(t *testing.T) {
	// Offered at twice the contract rate: both sides must agree on which
	// cells violate (discard mode: survivors only).
	vc := atm.VC{VPI: 2, VCI: 20}
	rig := NewPolicerRig(PolicerRigConfig{
		Seed: 2,
		Contracts: []PolicerContract{
			{VC: vc, PeakInterval: 20 * sim.Microsecond, Tau: sim.Microsecond},
		},
		Sources: []PolicerSource{
			{Model: traffic.NewCBR(100e3), VC: vc, Cells: 100}, // 10us spacing vs 20us contract
		},
	})
	if err := rig.Run(2 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !rig.Cmp.Clean() {
		t.Fatalf("hardware and reference disagree: %s\nbad: %v", rig.Report(), rig.Cmp.Bad)
	}
	if rig.DUT.NonConforming == 0 {
		t.Fatal("no violations at 2x contract rate")
	}
	if rig.DUT.NonConforming != rig.Ref.NonConforming {
		t.Errorf("violation counts differ: dut=%d ref=%d", rig.DUT.NonConforming, rig.Ref.NonConforming)
	}
	// At 2x the rate with small tau, about half the cells violate.
	if rig.DUT.NonConforming < 40 || rig.DUT.NonConforming > 60 {
		t.Errorf("violations = %d, expected ~50", rig.DUT.NonConforming)
	}
}

func TestPolicerCoVerificationTagging(t *testing.T) {
	vc := atm.VC{VPI: 3, VCI: 30}
	rig := NewPolicerRig(PolicerRigConfig{
		Seed: 3,
		Tag:  true,
		Contracts: []PolicerContract{
			{VC: vc, PeakInterval: 20 * sim.Microsecond, Tau: sim.Microsecond},
		},
		Sources: []PolicerSource{
			{Model: traffic.NewPoisson(80e3), VC: vc, Cells: 150},
		},
	})
	if err := rig.Run(4 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !rig.Cmp.Clean() {
		t.Fatalf("tagging disagreement: %s\nbad: %v", rig.Report(), rig.Cmp.Bad)
	}
	if rig.DUT.Tagged == 0 {
		t.Error("Poisson at 1.6x contract rate tagged nothing")
	}
	if rig.DUT.Tagged != rig.Ref.Tagged {
		t.Errorf("tag counts differ: dut=%d ref=%d", rig.DUT.Tagged, rig.Ref.Tagged)
	}
}

func TestPolicerCoVerificationMultiVC(t *testing.T) {
	// Two policed connections and one unpoliced, multiplexed on one line.
	vcA := atm.VC{VPI: 1, VCI: 1}
	vcB := atm.VC{VPI: 1, VCI: 2}
	vcC := atm.VC{VPI: 1, VCI: 3}
	rig := NewPolicerRig(PolicerRigConfig{
		Seed: 4,
		Contracts: []PolicerContract{
			{VC: vcA, PeakInterval: 25 * sim.Microsecond, Tau: 2 * sim.Microsecond},
			{VC: vcB, PeakInterval: 50 * sim.Microsecond, Tau: 2 * sim.Microsecond},
		},
		Sources: []PolicerSource{
			{Model: traffic.NewCBR(45e3), VC: vcA, Cells: 60},     // slightly over contract
			{Model: traffic.NewCBR(19e3), VC: vcB, Cells: 40},     // conforming
			{Model: traffic.NewPoisson(20e3), VC: vcC, Cells: 40}, // unpoliced
		},
	})
	if err := rig.Run(4 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !rig.Cmp.Clean() {
		t.Fatalf("multi-VC disagreement: %s\nbad: %v", rig.Report(), rig.Cmp.Bad)
	}
	if rig.DUT.Passed != 40 {
		t.Errorf("unpoliced passed = %d, want 40", rig.DUT.Passed)
	}
	if rig.DUT.NonConforming == 0 {
		t.Error("over-contract CBR not policed")
	}
}

func TestSlotAligned(t *testing.T) {
	m := SlotAligned{Model: traffic.NewPoisson(1e6), Period: 50 * sim.Nanosecond}
	rng := sim.NewRNG(5)
	for i := 0; i < 1000; i++ {
		d := m.Next(rng)
		if d%(50*sim.Nanosecond) != 0 {
			t.Fatalf("interval %v not slot aligned", d)
		}
		if d < 50*sim.Nanosecond {
			t.Fatalf("interval %v below one slot", d)
		}
	}
}
