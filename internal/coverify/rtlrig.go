package coverify

import (
	"fmt"

	"castanet/internal/atm"
	"castanet/internal/dut"
	"castanet/internal/hdl"
	"castanet/internal/rtltb"
	"castanet/internal/sim"
)

// RTLRig is the traditional pure-VHDL verification setup for the same
// switch: stimulus generators and response checkers elaborated as RTL
// test-bench hardware inside the event-driven simulator, no network
// simulator involved. It is the baseline of experiment E1 — the paper's
// "pure VHDL-based test benches" whose construction and simulation cost
// the co-verification environment eliminates.
type RTLRig struct {
	HDL      *hdl.Simulator
	DUT      *dut.Switch
	Gens     [dut.SwitchPorts]*rtltb.Generator
	Checkers [dut.SwitchPorts]*rtltb.Checker

	Cfg         SwitchRigConfig
	Offered     uint64
	totalCycles int
}

// NewRTLRig compiles the same per-port traffic description used by the
// co-simulation rig into static RTL stimulus vectors (the "regression
// test bench"), sampling each traffic model with the rig seed.
func NewRTLRig(cfg SwitchRigConfig) *RTLRig {
	if cfg.ClockPeriod == 0 {
		cfg.ClockPeriod = 50 * sim.Nanosecond
	}
	if cfg.Table == nil {
		cfg.Table = DefaultTable()
	}
	if cfg.Switch == (dut.SwitchConfig{}) {
		cfg.Switch = dut.DefaultSwitchConfig()
	}
	r := &RTLRig{Cfg: cfg}
	r.HDL = hdl.New()
	clk := r.HDL.Bit("clk", hdl.U)
	r.HDL.Clock(clk, cfg.ClockPeriod)
	r.DUT = dut.NewSwitch(r.HDL, clk, cfg.Table, cfg.Switch)
	r.DUT.InstrumentCover(cfg.Cover)
	hdrVPI, hdrVCI, hdrPTI, hdrCLP0, hdrCLP1 := coverHeaderPoints(cfg.Cover)

	rng := sim.NewRNG(cfg.Seed)
	var seq uint32
	for p := 0; p < dut.SwitchPorts; p++ {
		tr := cfg.Traffic[p]
		chk := rtltb.NewChecker(r.HDL, fmt.Sprintf("chk%d", p), clk,
			r.DUT.Out[p].Data, r.DUT.Out[p].Sync)
		r.Checkers[p] = chk
		if tr.Model == nil || tr.Cells == 0 {
			continue
		}
		srcRNG := rng.Split()
		var vectors []rtltb.Vector
		cycles := 0
		for i := uint64(0); i < tr.Cells; i++ {
			gapTime := tr.Model.Next(srcRNG)
			gap := int(gapTime / cfg.ClockPeriod)
			if gap < 0 {
				gap = 0
			}
			// Gaps are measured start-to-start at the network level;
			// subtract the cell's own transmission time, as a hand-built
			// vector file would.
			if gap >= atm.CellBytes {
				gap -= atm.CellBytes
			} else {
				gap = 0
			}
			vc := tr.VCs[int(i)%len(tr.VCs)]
			c := &atm.Cell{Header: atm.Header{VPI: vc.VPI, VCI: vc.VCI}}
			if tr.CLP1 > 0 && srcRNG.Bool(tr.CLP1) {
				c.CLP = 1
			}
			c.Seq = seq
			seq++
			r.Offered++
			coverHeaderHit(hdrVPI, hdrVCI, hdrPTI, hdrCLP0, hdrCLP1, c.Header)
			for b := 4; b < len(c.Payload); b++ {
				c.Payload[b] = byte(uint32(b) * (c.Seq + 1))
			}
			vectors = append(vectors, rtltb.Vector{GapCycles: gap, Cell: c})
			cycles += gap + atm.CellBytes
		}
		if cycles > r.totalCycles {
			r.totalCycles = cycles
		}
		r.Gens[p] = rtltb.NewGenerator(r.HDL, fmt.Sprintf("gen%d", p), clk,
			r.DUT.In[p].Data, r.DUT.In[p].Sync, vectors)
	}
	if !cfg.NoCompiled {
		r.HDL.MustCompile()
	}
	return r
}

// Run executes the regression until all generators finish plus a drain
// margin, entirely inside the event-driven HDL simulator.
func (r *RTLRig) Run() error {
	horizon := sim.Duration(r.totalCycles+portDrainCycles()) * r.Cfg.ClockPeriod
	return r.HDL.Run(horizon)
}

func portDrainCycles() int {
	return 16 * atm.CellBytes
}

// Checked returns the total cells observed by the output checkers.
func (r *RTLRig) Checked() uint64 {
	var t uint64
	for _, c := range r.Checkers {
		if c != nil {
			t += c.Cells
		}
	}
	return t
}

// CheckErrors returns the total checker protocol errors.
func (r *RTLRig) CheckErrors() uint64 {
	var t uint64
	for _, c := range r.Checkers {
		if c != nil {
			t += c.Errors
		}
	}
	return t
}

// ClockCycles returns the simulated byte-clock cycle count.
func (r *RTLRig) ClockCycles() uint64 {
	return uint64(r.HDL.Now() / r.Cfg.ClockPeriod)
}

// Report summarizes the regression run.
func (r *RTLRig) Report() string {
	return fmt.Sprintf("offered=%d checked=%d checkErrs=%d drops=%d hdlEvents=%d cycles=%d",
		r.Offered, r.Checked(), r.CheckErrors(), r.DUT.Drops(), r.HDL.Events(), r.ClockCycles())
}
