package coverify

import (
	"fmt"

	"castanet/internal/atm"
	"castanet/internal/cosim"
	"castanet/internal/dut"
	"castanet/internal/hdl"
	"castanet/internal/ipc"
	"castanet/internal/mapping"
	"castanet/internal/netsim"
	"castanet/internal/obs"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

// KindRawCell carries raw 53-octet images (conformance vectors, possibly
// invalid by construction) into the accounting unit's line.
const KindRawCell = ipc.KindUser + 32

// AcctRigConfig parameterizes the accounting-unit case study (§4 of the
// paper: "We have used CASTANET for the functional verification of an ATM
// accounting unit").
type AcctRigConfig struct {
	Seed        uint64
	ClockPeriod sim.Duration
	Delta       sim.Duration
	// VCs are the metered connections.
	VCs []atm.VC
	// Tariff for the reference charging computation.
	Tariff atm.Tariff
	// Sources describes the traffic: per entry a model, a VC index into
	// VCs (or -1 for an unregistered connection) and a cell budget.
	Sources []AcctSource
	// SyncEvery is the time-update period.
	SyncEvery sim.Duration
	// Batch coalesces per-instant coupling messages into δ-window units
	// (see SwitchRigConfig.Batch).
	Batch bool
	// NoCompiled opts out of the compiled bit-parallel data plane (see
	// SwitchRigConfig.NoCompiled).
	NoCompiled bool
	// Metrics and Trace mirror SwitchRigConfig's observability hooks.
	Metrics *obs.Registry
	Trace   *obs.Tracer
	// Cover, when non-nil, receives the run's functional coverage: the
	// metering event bins under "coverify.acct" (folded once from the
	// hardware's end-of-run counters) plus the shared cosim.sync group.
	Cover *obs.CoverRegistry
}

// AcctSource is one traffic stream of the case study.
type AcctSource struct {
	Model traffic.Model
	VC    int // index into VCs, or -1 for an unregistered VC
	CLP1  float64
	Cells uint64
}

// AcctRig is the accounting-unit co-verification environment: the same
// cell stream is metered by the algorithmic reference (atm.Accounting)
// and, through the coupling, by the RTL accounting unit; at end of run
// the per-connection counters and charging units are compared.
type AcctRig struct {
	Cfg AcctRigConfig

	Net    *netsim.Network
	HDL    *hdl.Simulator
	DUT    *dut.AccountingUnit
	Ref    *atm.Accounting
	Entity *cosim.Entity
	Iface  *cosim.InterfaceProcess

	writer  *mapping.CellPortWriter
	Offered uint64
	// Exceptions counts hardware exception strobes observed.
	Exceptions uint64

	coverEvent *obs.CoverPoint
}

// NewAcctRig elaborates the environment.
func NewAcctRig(cfg AcctRigConfig) *AcctRig {
	if cfg.ClockPeriod == 0 {
		cfg.ClockPeriod = 50 * sim.Nanosecond
	}
	if cfg.Delta == 0 {
		cfg.Delta = 64 * cfg.ClockPeriod
	}
	if cfg.SyncEvery == 0 {
		cfg.SyncEvery = 50 * sim.Microsecond
	}
	if cfg.Tariff.CellsPerUnit == 0 {
		cfg.Tariff = atm.Tariff{CellsPerUnit: 100}
	}
	r := &AcctRig{Cfg: cfg}
	r.coverEvent = cfg.Cover.Group("coverify.acct").Point("event",
		"metered", "clp1", "unregistered", "exception")

	r.HDL = hdl.New()
	r.HDL.Instrument(cfg.Metrics, "hdl.sim")
	clk := r.HDL.Bit("clk", hdl.U)
	r.HDL.Clock(clk, cfg.ClockPeriod)
	r.DUT = dut.NewAccountingUnit(r.HDL, clk, 256)
	r.DUT.Exception.OnChange(func(now sim.Time, old, new hdl.LV) {
		if new[0].IsHigh() {
			r.Exceptions++
		}
	})
	r.Ref = atm.NewAccounting(cfg.Tariff)
	for _, vc := range cfg.VCs {
		r.Ref.Register(vc)
		if _, err := r.DUT.Register(vc); err != nil {
			panic(err)
		}
	}

	r.Entity = cosim.NewEntity(r.HDL)
	r.Entity.Instrument(cfg.Metrics, cfg.Trace)
	r.Entity.InstrumentCover(cfg.Cover)
	r.writer = mapping.NewCellPortWriter(r.HDL, "castanet_tx", clk, r.DUT.In.Data, r.DUT.In.Sync)
	r.Entity.Input(cosim.KindData, cfg.Delta, func(e *cosim.Entity, msg ipc.Message) error {
		v, err := (mapping.CellCodec{}).Decode(msg.Data)
		if err != nil {
			return err
		}
		r.writer.Enqueue(v.(*atm.Cell))
		return nil
	})
	r.Entity.Input(KindRawCell, cfg.Delta, func(e *cosim.Entity, msg ipc.Message) error {
		if len(msg.Data) != atm.CellBytes {
			return fmt.Errorf("coverify: raw vector of %d bytes", len(msg.Data))
		}
		var img [atm.CellBytes]byte
		copy(img[:], msg.Data)
		r.writer.EnqueueRaw(img)
		return nil
	})

	registry := mapping.NewRegistry()
	registry.Register(cosim.KindData, mapping.CellCodec{})
	registry.Register(KindRawCell, mapping.BytesCodec{})
	r.Iface = &cosim.InterfaceProcess{
		Coupling:  &cosim.Direct{Entity: r.Entity},
		Registry:  registry,
		SyncEvery: cfg.SyncEvery,
		Batch:     cfg.Batch,
		Classify: func(pkt *netsim.Packet, port int) ipc.Kind {
			if _, raw := pkt.Data.([]byte); raw {
				return KindRawCell
			}
			return cosim.KindData
		},
	}
	r.Iface.Instrument(cfg.Metrics, cfg.Trace)
	r.Iface.InstrumentCover(cfg.Cover)

	r.Net = netsim.New(cfg.Seed)
	r.Net.Sched.Instrument(cfg.Metrics, "net.sched")
	ifaceNode := r.Net.Node("castanet", r.Iface)
	refNode := r.Net.Node("refacct", &acctRefProc{rig: r})
	for i, s := range cfg.Sources {
		s := s
		src := &netsim.Source{
			Gen:   s.Model,
			Limit: s.Cells,
			Make: func(ctx *netsim.Ctx, k uint64) *netsim.Packet {
				var vc atm.VC
				if s.VC >= 0 {
					vc = cfg.VCs[s.VC]
				} else {
					vc = atm.VC{VPI: 0xEE, VCI: 0xEEE} // deliberately unregistered
				}
				c := &atm.Cell{Header: atm.Header{VPI: vc.VPI, VCI: vc.VCI}}
				if s.CLP1 > 0 && ctx.RNG().Bool(s.CLP1) {
					c.CLP = 1
				}
				c.Seq = uint32(r.Offered)
				r.Offered++
				c.StampSeq()
				return ctx.Net().NewPacket("cell", c, atm.CellBytes*8)
			},
		}
		srcNode := r.Net.Node(fmt.Sprintf("src%d", i), src)
		split := r.Net.Node(fmt.Sprintf("split%d", i), &netsim.Func{
			OnArrival: func(ctx *netsim.Ctx, pkt *netsim.Packet, port int) {
				cell := pkt.Data.(*atm.Cell)
				ctx.Send(ctx.Net().NewPacket("cell", cell.Clone(), pkt.Size), 0)
				ctx.Send(ctx.Net().NewPacket("cell", cell.Clone(), pkt.Size), 1)
			},
		})
		r.Net.Connect(srcNode, 0, split, 0, netsim.LinkParams{})
		r.Net.Connect(split, 0, refNode, 0, netsim.LinkParams{})
		r.Net.Connect(split, 1, ifaceNode, 0, netsim.LinkParams{})
	}
	if !cfg.NoCompiled {
		r.HDL.MustCompile()
	}
	return r
}

// acctRefProc feeds the reference accounting algorithm. Raw byte images
// (conformance vectors) are parsed first; images that fail the HEC are
// invisible to the meter, exactly as they are at the bit level.
type acctRefProc struct{ rig *AcctRig }

func (a *acctRefProc) Init(ctx *netsim.Ctx) {}
func (a *acctRefProc) Arrival(ctx *netsim.Ctx, pkt *netsim.Packet, port int) {
	switch data := pkt.Data.(type) {
	case *atm.Cell:
		a.rig.Ref.Observe(data, ctx.Now())
	case []byte:
		var img [atm.CellBytes]byte
		copy(img[:], data)
		if cell, err := atm.Unmarshal(img); err == nil {
			a.rig.Ref.Observe(cell, ctx.Now())
		}
	default:
		panic(fmt.Sprintf("coverify: accounting reference got %T", pkt.Data))
	}
}
func (a *acctRefProc) Timer(ctx *netsim.Ctx, tag interface{}) {}

// InjectVector schedules a raw conformance vector image into both the
// hardware path and the reference model at the given simulation time
// (both sides of the comparison must see the same stimulus). Call before
// Run.
func (r *AcctRig) InjectVector(at sim.Time, img [atm.CellBytes]byte) {
	iface, ok := r.Net.Lookup("castanet")
	if !ok {
		panic("coverify: interface node missing")
	}
	ref, ok := r.Net.Lookup("refacct")
	if !ok {
		panic("coverify: reference node missing")
	}
	raw := make([]byte, atm.CellBytes)
	copy(raw, img[:])
	r.Net.Sched.At(at, func() {
		iface.Inject(r.Net.NewPacket("vector", raw, atm.CellBytes*8), 0)
		ref.Inject(r.Net.NewPacket("vector", raw, atm.CellBytes*8), 0)
	})
}

// Run executes the case study and drains the hardware.
func (r *AcctRig) Run(until sim.Time) error {
	tr := r.Cfg.Trace
	tr.Begin(obs.TrackRig, "run", int64(r.Net.Sched.Now()))
	r.Net.Run(until)
	tr.End(obs.TrackRig, "run", int64(r.Net.Sched.Now()))
	if err := r.Entity.Deliver(ipc.Message{Kind: ipc.KindSync, Time: until + 100*53*r.Cfg.ClockPeriod}); err != nil {
		return err
	}
	if reg := r.Cfg.Metrics; reg != nil {
		reg.Gauge("coverify.offered").Set(float64(r.Offered))
		reg.Gauge("coverify.exceptions").Set(float64(r.Exceptions))
	}
	// Metering outcomes accumulate in the hardware's counters during the
	// run; fold them into the event bins once, after the drain.
	r.coverEvent.Add("metered", r.DUT.Observed)
	for _, vc := range r.Cfg.VCs {
		if slot, ok := r.DUT.Slot(vc); ok {
			r.coverEvent.Add("clp1", uint64(r.DUT.Counter(slot, true)))
		}
	}
	r.coverEvent.Add("unregistered", r.DUT.Unregistered)
	r.coverEvent.Add("exception", r.Exceptions)
	return nil
}

// CounterMismatch is one discrepancy between the reference and hardware
// counters.
type CounterMismatch struct {
	VC    atm.VC
	Field string
	Ref   uint64
	DUT   uint64
}

// Compare checks every registered connection's counters (total cells,
// CLP1 cells) and the unregistered-cell count between the reference
// algorithm and the hardware.
func (r *AcctRig) Compare() []CounterMismatch {
	var out []CounterMismatch
	for _, vc := range r.Cfg.VCs {
		rec, _ := r.Ref.Record(vc)
		slot, ok := r.DUT.Slot(vc)
		if !ok {
			out = append(out, CounterMismatch{VC: vc, Field: "slot", Ref: 1, DUT: 0})
			continue
		}
		if got := uint64(r.DUT.Counter(slot, false)); got != rec.Cells {
			out = append(out, CounterMismatch{VC: vc, Field: "cells", Ref: rec.Cells, DUT: got})
		}
		if got := uint64(r.DUT.Counter(slot, true)); got != rec.CLP1Cells {
			out = append(out, CounterMismatch{VC: vc, Field: "clp1", Ref: rec.CLP1Cells, DUT: got})
		}
	}
	if r.Ref.Unregistered != r.DUT.Unregistered {
		out = append(out, CounterMismatch{Field: "unregistered", Ref: r.Ref.Unregistered, DUT: r.DUT.Unregistered})
	}
	return out
}

// Units returns the charging units per connection from the reference
// tariff applied to the hardware counters — the billing-level check.
func (r *AcctRig) Units(vc atm.VC) (ref, dutv uint64) {
	ref = r.Ref.Units(vc)
	slot, ok := r.DUT.Slot(vc)
	if !ok {
		return ref, 0
	}
	dutv = r.Cfg.Tariff.Units(uint64(r.DUT.Counter(slot, false)), uint64(r.DUT.Counter(slot, true)))
	return ref, dutv
}

// Report summarizes the case study.
func (r *AcctRig) Report() string {
	return fmt.Sprintf("offered=%d observed(dut)=%d unregistered(dut)=%d exceptions=%d mismatches=%d",
		r.Offered, r.DUT.Observed, r.DUT.Unregistered, r.Exceptions, len(r.Compare()))
}
