package coverify

import (
	"bytes"
	"fmt"
	"testing"

	"castanet/internal/hdl"
	"castanet/internal/sim"
)

// These tests lift the kernel-equivalence property (internal/hdl's
// differential harness) to the full rigs: with identical configuration,
// a run on the compiled bit-parallel data plane and a run on the plain
// nine-value event kernel must produce byte-identical VCD waveforms,
// identical kernel counters and identical end-of-run reports. This is
// the contract that lets the rigs enable -compiled by default without
// touching a single golden digest.

type rigKernelObs struct {
	vcd    string
	events uint64
	runs   uint64
	deltas uint64
	points uint64
	report string
}

func (o rigKernelObs) counters() string {
	return fmt.Sprintf("events=%d runs=%d deltas=%d points=%d", o.events, o.runs, o.deltas, o.points)
}

func diffRigObs(t *testing.T, name string, ev, cp rigKernelObs) {
	t.Helper()
	if ev.counters() != cp.counters() {
		t.Errorf("%s: counter divergence:\n event:    %s\n compiled: %s", name, ev.counters(), cp.counters())
	}
	if ev.report != cp.report {
		t.Errorf("%s: report divergence:\n event:    %s\n compiled: %s", name, ev.report, cp.report)
	}
	if ev.vcd != cp.vcd {
		t.Errorf("%s: VCD divergence (%d vs %d bytes)", name, len(ev.vcd), len(cp.vcd))
	}
}

// TestRTLRigKernelEquivalence runs the pure-RTL regression bench both
// ways, watching every signal in the design.
func TestRTLRigKernelEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 42, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			run := func(noCompiled bool) rigKernelObs {
				rig := NewRTLRig(SwitchRigConfig{
					Seed:       seed,
					Traffic:    lightTraffic(10 + seed%7),
					NoCompiled: noCompiled,
				})
				var buf bytes.Buffer
				vcd := hdl.NewVCD(&buf, rig.HDL)
				if err := rig.Run(); err != nil {
					t.Fatal(err)
				}
				vcd.Close()
				if rig.HDL.Compiled() == noCompiled {
					t.Fatalf("Compiled() = %v with NoCompiled=%v", rig.HDL.Compiled(), noCompiled)
				}
				return rigKernelObs{
					vcd:    buf.String(),
					events: rig.HDL.Events(),
					runs:   rig.HDL.ProcessRuns(),
					deltas: rig.HDL.DeltaCycles(),
					points: rig.HDL.TimePoints(),
					report: rig.Report(),
				}
			}
			diffRigObs(t, "rtlrig", run(true), run(false))
		})
	}
}

// TestSwitchRigKernelEquivalence runs the co-simulation rig both ways —
// the network scheduler, coupling and comparison engine all downstream
// of the kernel under test — with the port-waveform VCD attached.
func TestSwitchRigKernelEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 42, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			run := func(noCompiled bool) rigKernelObs {
				var buf bytes.Buffer
				rig := NewSwitchRig(SwitchRigConfig{
					Seed:       seed,
					Traffic:    lightTraffic(15),
					Waveforms:  &buf,
					NoCompiled: noCompiled,
				})
				if err := rig.Run(4 * sim.Millisecond); err != nil {
					t.Fatal(err)
				}
				if len(rig.Cmp.Mismatches()) != 0 {
					t.Fatalf("mismatches on NoCompiled=%v: %v", noCompiled, rig.Cmp.Mismatches())
				}
				return rigKernelObs{
					vcd:    buf.String(),
					events: rig.HDL.Events(),
					runs:   rig.HDL.ProcessRuns(),
					deltas: rig.HDL.DeltaCycles(),
					points: rig.HDL.TimePoints(),
					report: rig.Report(),
				}
			}
			diffRigObs(t, "switchrig", run(true), run(false))
		})
	}
}
