package coverify

import (
	"testing"
	"time"

	"castanet/internal/atm"
	"castanet/internal/dut"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

// lightTraffic offers moderate CBR load on every port: per-port rate well
// under the internal bus capacity, so zero loss is expected.
func lightTraffic(cellsPerPort uint64) [dut.SwitchPorts]PortTraffic {
	var t [dut.SwitchPorts]PortTraffic
	for p := 0; p < dut.SwitchPorts; p++ {
		t[p] = PortTraffic{
			Model: traffic.NewCBR(50e3), // 50 kcell/s per port
			VCs:   PortVCs(p),
			Cells: cellsPerPort,
		}
	}
	return t
}

func TestSwitchCoVerificationClean(t *testing.T) {
	rig := NewSwitchRig(SwitchRigConfig{
		Seed:    1,
		Traffic: lightTraffic(50),
	})
	if err := rig.Run(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if rig.Offered != 200 {
		t.Fatalf("offered = %d", rig.Offered)
	}
	for _, m := range rig.Cmp.Mismatches() {
		t.Errorf("%v", m)
	}
	if out := rig.Cmp.Outstanding(); len(out) != 0 {
		t.Errorf("%d cells lost: %v (report: %s)", len(out), out, rig.Report())
	}
	if rig.Cmp.Matched != 200 {
		t.Errorf("matched = %d, want 200", rig.Cmp.Matched)
	}
	if rig.Entity.CausalityErrors != 0 {
		t.Errorf("causality errors: %d", rig.Entity.CausalityErrors)
	}
}

func TestSwitchCoVerificationRemoteEqualsDirect(t *testing.T) {
	run := func(remote bool) (uint64, string) {
		rig := NewSwitchRig(SwitchRigConfig{
			Seed:    42,
			Remote:  remote,
			Traffic: lightTraffic(30),
		})
		if err := rig.Run(5 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		// Close is idempotent; a second call must return the same status
		// instead of blocking on the drained server-completion channel.
		first := rig.Close()
		closed := make(chan error, 1)
		go func() { closed <- rig.Close() }()
		select {
		case again := <-closed:
			if again != first {
				t.Errorf("second Close = %v, first = %v", again, first)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("second Close blocked")
		}
		return rig.Cmp.Matched, rig.Report()
	}
	mDirect, repDirect := run(false)
	mRemote, repRemote := run(true)
	if mDirect != mRemote {
		t.Errorf("direct matched %d, remote matched %d", mDirect, mRemote)
	}
	if repDirect != repRemote {
		t.Errorf("reports differ:\n direct: %s\n remote: %s", repDirect, repRemote)
	}
}

func TestSwitchCoVerificationBursty(t *testing.T) {
	// ON/OFF and Poisson traffic with CLP marking: still lossless at this
	// load, and the comparator must stay clean (headers, payload, routing).
	var tr [dut.SwitchPorts]PortTraffic
	tr[0] = PortTraffic{Model: traffic.NewPoisson(40e3), VCs: PortVCs(0), Cells: 60, CLP1: 0.3}
	tr[1] = PortTraffic{Model: &traffic.OnOff{
		PeakInterval: 20 * sim.Microsecond,
		MeanOn:       sim.Millisecond,
		MeanOff:      sim.Millisecond,
	}, VCs: PortVCs(1), Cells: 60}
	tr[2] = PortTraffic{Model: traffic.NewCBR(30e3), VCs: PortVCs(2), Cells: 60, CLP1: 1.0}
	rig := NewSwitchRig(SwitchRigConfig{Seed: 7, Traffic: tr})
	if err := rig.Run(20 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !rig.Cmp.Clean() {
		for _, m := range rig.Cmp.Mismatches() {
			t.Errorf("%v", m)
		}
		t.Fatalf("comparison not clean: %s", rig.Report())
	}
	if rig.Cmp.Matched != 180 {
		t.Errorf("matched = %d, want 180", rig.Cmp.Matched)
	}
}

func TestSwitchCoVerificationDetectsInjectedBug(t *testing.T) {
	// Sabotage the DUT's connection table after elaboration: one VC routed
	// to the wrong output. The comparator must catch it — this is the
	// whole point of the environment.
	rig := NewSwitchRig(SwitchRigConfig{Seed: 3, Traffic: lightTraffic(20)})
	// DUT and reference share a Table pointer in this rig; give the DUT
	// its own poisoned copy.
	poisoned := DefaultTable()
	in := PortVCs(0)[0]
	route, _ := poisoned.Lookup(in)
	route.Port = (route.Port + 1) % dut.SwitchPorts
	poisoned.Remove(in)
	poisoned.Add(in, route)
	rig.DUT.Table = poisoned
	if err := rig.Run(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	var portMismatch int
	for _, m := range rig.Cmp.Mismatches() {
		if m.Kind.String() == "port" {
			portMismatch++
		}
	}
	if portMismatch == 0 {
		t.Fatalf("injected routing bug not detected: %s", rig.Report())
	}
}

func TestSwitchCoVerificationDeterministic(t *testing.T) {
	run := func() string {
		rig := NewSwitchRig(SwitchRigConfig{Seed: 99, Traffic: lightTraffic(25)})
		if err := rig.Run(8 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		return rig.Report()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed diverged:\n%s\n%s", a, b)
	}
}

func TestSwitchCoVerificationLagInvariant(t *testing.T) {
	rig := NewSwitchRig(SwitchRigConfig{Seed: 5, Traffic: lightTraffic(40)})
	if err := rig.Run(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !rig.Entity.LagInvariantHolds() {
		t.Error("lag invariant violated")
	}
	if rig.Entity.MaxLag <= 0 {
		t.Error("hardware never lagged? suspicious")
	}
}

func TestSwitchCoVerificationOverloadDropsAccounted(t *testing.T) {
	// Saturating load into tiny FIFOs: cells are dropped, but every
	// delivered cell must still match, and cells must be conserved:
	// offered = matched + dropped after the final drain.
	var tr [dut.SwitchPorts]PortTraffic
	for p := 0; p < dut.SwitchPorts; p++ {
		tr[p] = PortTraffic{
			// 53 octets at 20 MHz take 2.65us per cell; 3us spacing is
			// ~88% load per line, and all four lines converge on output 0.
			Model: traffic.NewCBR(1e6 / 3.0),
			VCs:   []atm.VC{{VPI: byte(p + 1), VCI: 100}}, // -> output 0
			Cells: 120,
		}
	}
	rig := NewSwitchRig(SwitchRigConfig{
		Seed:    11,
		Switch:  dut.SwitchConfig{InFifoCells: 2, OutFifoCells: 4},
		Traffic: tr,
	})
	if err := rig.Run(3 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	dropped := rig.DUT.Drops()
	if dropped == 0 {
		t.Error("4x overload into one port dropped nothing")
	}
	// Delivered cells are all correct: losses show up as outstanding, not
	// as mismatches.
	for _, m := range rig.Cmp.Mismatches() {
		t.Errorf("delivered cell corrupted under overload: %v", m)
	}
	if rig.Cmp.Matched+dropped != rig.Offered {
		t.Errorf("cell conservation violated: matched %d + dropped %d != offered %d",
			rig.Cmp.Matched, dropped, rig.Offered)
	}
}
