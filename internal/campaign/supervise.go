package campaign

import (
	"context"
	"fmt"
	"time"

	"castanet/internal/cosim"
	"castanet/internal/obs"
	"castanet/internal/sim"
)

// Policy configures per-run supervision: a wall-clock deadline that reaps
// hung runs, a bounded retry budget for infrastructure failures, and cell
// quarantine for infrastructure that stays down. The zero value disables
// all of it, leaving the engine's original synchronous behaviour.
type Policy struct {
	// RunTimeout is the per-run wall-clock deadline. A run still blocked
	// past it fails with a typed cosim.ClassTimeout coupling error
	// ("coupling/timeout/run" in the digest) and the worker moves on; the
	// run's context carries the deadline so OnCancel teardown unwinds the
	// rig. 0 disables the deadline.
	RunTimeout time.Duration
	// Retries is how many times an infra-class failure (cosim.Retryable:
	// timeouts, closed links, marked errors) is re-attempted with the
	// identical derived seed. Verification mismatches are never retried.
	Retries int
	// RetryBase and RetryCap bound the jittered exponential backoff
	// between attempts (defaults 10ms and 1s). The jitter stream derives
	// from the run seed, so a replayed run backs off identically.
	RetryBase time.Duration
	RetryCap  time.Duration
	// QuarantineAfter quarantines a matrix cell once runs in
	// QuarantineAfter consecutive cell ordinals exhaust their retry
	// budget: later runs of the cell are skipped and counted as
	// quarantined instead of burning the remaining budget. 0 disables
	// quarantine.
	QuarantineAfter int
}

// active reports whether any supervision feature is enabled.
func (p Policy) active() bool {
	return p.RunTimeout > 0 || p.Retries > 0 || p.QuarantineAfter > 0
}

func (p Policy) retryBase() time.Duration {
	if p.RetryBase > 0 {
		return p.RetryBase
	}
	return 10 * time.Millisecond
}

func (p Policy) retryCap() time.Duration {
	if p.RetryCap > 0 {
		return p.RetryCap
	}
	return time.Second
}

// reapGrace is how long a timed-out run gets to unwind through its
// OnCancel teardown before the worker abandons the attempt goroutine and
// moves on. The goroutine drains into its buffered channel whenever the
// teardown finally completes.
const reapGrace = 100 * time.Millisecond

// backoffSalt derives the retry-jitter stream from the run seed without
// colliding with the run's own stimulus stream (which derives from the
// campaign seed, not the run seed).
const backoffSalt = 0xb0ccf0ff

// outcome is the consumed result of one supervised run: the final
// attempt's error, payload and aggregate (nil when the attempt was
// abandoned at the deadline — an abandoned goroutine may still be
// writing, so nothing of it is read).
type outcome struct {
	err      error
	value    any
	agg      *agg
	attempts int
	gaveUp   bool // final error was still retryable after the budget ran out
}

// supervise executes one run under the policy: fresh Run state per
// attempt, deadline reaping, classified bounded retry. proto carries the
// immutable run identity (index, seed, shard, cell).
func (p Policy) supervise(ctx context.Context, fn RunFunc, proto Run,
	reg *obs.Registry, retriesC, gaveupC *obs.Counter) outcome {

	var out outcome
	var jitter *sim.RNG
	for attempt := 0; ; attempt++ {
		// Every attempt gets a private Run copy and aggregate: a
		// timed-out attempt's goroutine may outlive the attempt, and its
		// stray writes must never reach state the campaign reads.
		r := proto
		r.Deadline = p.RunTimeout
		r.agg = newAgg()
		r.reg = reg
		if r.coverage {
			r.cover = obs.NewCoverRegistry()
		}
		if r.profile {
			// The attempt's activity is private (it must be discardable if
			// the attempt is reaped or retried), but the wall-clock phases
			// accumulate into the campaign's shared live profile — wall time
			// was spent either way and never enters a digest.
			r.prof = &obs.RunProfile{Phases: r.phases}
		}
		err, reaped := p.attempt(ctx, fn, &r)
		out.attempts = attempt + 1
		out.err = err
		out.value, out.agg = nil, nil
		if !reaped {
			// Fold the attempt's coverage and activity into its aggregate: a
			// reaped attempt's registry may still be written by the abandoned
			// goroutine, so — like the stats — only a consumed attempt's
			// snapshots survive.
			r.agg.cover = r.cover.Snapshot()
			r.agg.activity = r.prof.Activity()
			out.value, out.agg = r.value, r.agg
		}
		switch {
		case err == nil, ctx.Err() != nil, !cosim.Retryable(err):
			return out
		case attempt >= p.Retries:
			out.gaveUp = true
			gaveupC.Inc()
			return out
		}
		retriesC.Inc()
		if jitter == nil {
			jitter = sim.NewRNG(sim.DeriveSeed(proto.Seed, backoffSalt))
		}
		if !sleepCtx(ctx, p.backoff(attempt, jitter)) {
			return out
		}
	}
}

// attempt runs fn once. Without a deadline it runs synchronously on the
// worker, exactly as the unsupervised engine did. With one, it runs on a
// reaper-supervised goroutine: if the deadline expires the attempt is
// given reapGrace to unwind (the run ctx is already cancelled, so
// OnCancel teardown is in flight), then abandoned, and the attempt
// reports a deterministic typed timeout. reaped is true when the
// attempt's Run state must not be consumed.
func (p Policy) attempt(ctx context.Context, fn RunFunc, r *Run) (err error, reaped bool) {
	if p.RunTimeout <= 0 {
		return runOne(ctx, fn, r), false
	}
	actx, cancel := context.WithTimeout(ctx, p.RunTimeout)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- runOne(actx, fn, r) }()
	select {
	case err := <-done:
		return err, false
	case <-actx.Done():
	}
	grace := time.NewTimer(reapGrace)
	defer grace.Stop()
	select {
	case <-done:
		// The teardown unwound the run within the grace window. Its error
		// is an artifact of the cancellation; the deterministic finding is
		// the deadline itself, so report that instead.
	case <-grace.C:
	}
	if ctx.Err() != nil {
		// The campaign, not the deadline, cancelled the run: surface a
		// teardown error so the worker accounts the run as skipped.
		return &cosim.CouplingError{Class: cosim.ClassTimeout, Op: "run", Err: ctx.Err()}, true
	}
	return &cosim.CouplingError{Class: cosim.ClassTimeout, Op: "run",
		Err: fmt.Errorf("run %d exceeded the per-run deadline %v: %w",
			r.Index, p.RunTimeout, context.DeadlineExceeded)}, true
}

// backoff returns the jittered exponential delay before retry attempt+1:
// half the capped exponential step fixed, half drawn from the run's
// seed-derived jitter stream, so schedules decorrelate across runs yet
// replay deterministically.
func (p Policy) backoff(attempt int, jitter *sim.RNG) time.Duration {
	base, limit := p.retryBase(), p.retryCap()
	d := base << uint(attempt)
	if d <= 0 || d > limit {
		d = limit
	}
	half := d / 2
	return half + time.Duration(jitter.Uint64()%uint64(half+1))
}

// sleepCtx sleeps for d unless ctx is cancelled first; it reports whether
// the full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
