package campaign

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"castanet/internal/hdl"
	"castanet/internal/sim"
)

// profileMatrix is the synthetic stand-in for profiled rigs: each run
// builds a tiny HDL kernel, attaches its activity snapshot to the run's
// profile, and clocks a seed-derived number of steps — so the per-signal
// event counts and per-process run counts are a pure function of the
// run's seed, the contract the real rigs honour.
func profileMatrix() []Cell {
	run := func(ctx context.Context, r *Run) error {
		rng := r.RNG()
		h := hdl.New()
		if p := r.Profile(); p != nil {
			p.AttachActivitySource(h.EnableProfile().Snapshot)
		}
		clk := h.Bit("clk", hdl.U)
		h.Clock(clk, 2*sim.Nanosecond)
		n := 0
		h.Process("count", func() { n++ }, clk)
		steps := 20 + int(rng.Uint64()%30)
		for i := 0; i < steps; i++ {
			if _, err := h.Step(); err != nil {
				return err
			}
		}
		r.Observe("steps", float64(steps))
		return nil
	}
	return []Cell{
		{Experiment: "synth", Run: run},
		{Experiment: "synth", Fault: "noise", Run: run},
	}
}

// profileSection extracts just the "profile " block from a digest body.
func profileSection(t *testing.T, sum *Summary) string {
	t.Helper()
	body := digestBody(t, sum)
	i := strings.Index(body, "profile ")
	if i < 0 {
		t.Fatalf("digest has no profile section:\n%s", body)
	}
	section := body[i:]
	if j := strings.Index(section, "\nrun="); j >= 0 {
		section = section[:j+1]
	}
	return section
}

func executeProfile(t *testing.T, shards int) *Summary {
	t.Helper()
	sum, err := Execute(context.Background(), Spec{
		Name:    "prof-prop",
		Seed:    42,
		Runs:    120,
		Shards:  shards,
		Matrix:  profileMatrix(),
		Profile: true,
	})
	if err != nil {
		t.Fatalf("Execute(shards=%d): %v", shards, err)
	}
	return sum
}

// TestProfileSectionDeterministicAcrossShards is the profiler's merge
// property: the digest's profile section — integer event and run counts
// in hotspot order — must be byte-identical no matter how many shards
// the campaign fanned across.
func TestProfileSectionDeterministicAcrossShards(t *testing.T) {
	ref := executeProfile(t, 1)
	refSection := profileSection(t, ref)
	if !strings.Contains(refSection, "profile signal=clk") {
		t.Fatalf("reference profile section malformed:\n%s", refSection)
	}
	if !strings.Contains(refSection, "profile process=count") {
		t.Fatalf("process line missing from section:\n%s", refSection)
	}
	refBody := digestBody(t, ref)
	for _, shards := range []int{2, 5} {
		got := executeProfile(t, shards)
		if s := profileSection(t, got); s != refSection {
			t.Errorf("profile section differs between 1 and %d shards:\n-- 1 shard --\n%s-- %d shards --\n%s",
				shards, refSection, shards, s)
		}
		if b := digestBody(t, got); b != refBody {
			t.Errorf("digest body differs between 1 and %d shards", shards)
		}
	}
}

// TestProfileCheckpointResumeDeterministic extends the durability
// property to the profiler: interrupt a checkpointed campaign mid-flight,
// resume it, and the merged activity — and with it the whole digest body
// — is byte-identical to an uninterrupted run. This exercises the
// checkpoint's activity encode/decode and the resume restore path.
func TestProfileCheckpointResumeDeterministic(t *testing.T) {
	for _, shards := range []int{2, 5} {
		base := Spec{
			Name:    "prof-ckpt",
			Seed:    7,
			Runs:    120,
			Shards:  shards,
			Matrix:  profileMatrix(),
			Profile: true,
		}
		ref, err := Execute(context.Background(), base)
		if err != nil {
			t.Fatalf("shards=%d: reference Execute: %v", shards, err)
		}

		ck := filepath.Join(t.TempDir(), "campaign.ckpt")
		ctx, cancel := context.WithCancel(context.Background())
		interrupted := base
		interrupted.Checkpoint = ck
		interrupted.CheckpointEvery = 8
		interrupted.OnResult = interruptAfter(40, cancel)
		partial, err := Execute(ctx, interrupted)
		cancel()
		if err != nil {
			t.Fatalf("shards=%d: interrupted Execute: %v", shards, err)
		}
		if partial.Skipped == 0 {
			t.Fatalf("shards=%d: interruption skipped nothing; property is vacuous", shards)
		}
		if _, err := os.Stat(ck); err != nil {
			t.Fatalf("shards=%d: no checkpoint written: %v", shards, err)
		}

		resumed := base
		resumed.Checkpoint = ck
		res, err := Resume(context.Background(), resumed)
		if err != nil {
			t.Fatalf("shards=%d: Resume: %v", shards, err)
		}
		if res.Skipped != 0 {
			t.Errorf("shards=%d: resumed run skipped %d runs", shards, res.Skipped)
		}
		if got, want := digestBody(t, res), digestBody(t, ref); got != want {
			t.Errorf("shards=%d: resumed digest body differs:\n-- resumed --\n%s-- reference --\n%s",
				shards, got, want)
		}
		assertSameSummary(t, res, ref, fmt.Sprintf("profile shards=%d", shards))
	}
}

// TestProfileOffStaysInvisible pins the opt-in contract: without
// Spec.Profile the run hands rigs a nil profile (every attach and phase
// attribution a no-op), the summary carries no activity, and the digest
// gains no section.
func TestProfileOffStaysInvisible(t *testing.T) {
	sawNil := false
	matrix := profileMatrix()
	inner := matrix[0].Run
	matrix[0].Run = func(ctx context.Context, r *Run) error {
		if r.Profile() == nil {
			sawNil = true
		}
		return inner(ctx, r)
	}
	sum, err := Execute(context.Background(), Spec{
		Name:   "prof-off",
		Seed:   3,
		Runs:   40,
		Shards: 2,
		Matrix: matrix,
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !sawNil {
		t.Error("profile off: Run.Profile() was never nil")
	}
	if !sum.Activity.Empty() {
		t.Errorf("profile off: summary carries activity: %d signals, %d processes",
			len(sum.Activity.Signals), len(sum.Activity.Processes))
	}
	var b strings.Builder
	if err := sum.WriteDigest(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "profile ") {
		t.Errorf("profile off: digest grew a profile section:\n%s", b.String())
	}
}
