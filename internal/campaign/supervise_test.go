package campaign

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"castanet/internal/cosim"
	"castanet/internal/obs"
	"castanet/internal/sim"
)

// attemptLog counts executions per run index across retries.
type attemptLog struct {
	mu sync.Mutex
	n  map[uint64]int
}

func newAttemptLog() *attemptLog { return &attemptLog{n: make(map[uint64]int)} }

func (l *attemptLog) bump(i uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.n[i]++
	return l.n[i]
}

func (l *attemptLog) count(i uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n[i]
}

// TestRetryClassification is the acceptance property for the retry layer:
// a deterministic ClassProtocol mismatch is reported after exactly one
// attempt, while a transient ClassTimeout heals on retry, increments the
// campaign.retries counter, and leaves no digest entry.
func TestRetryClassification(t *testing.T) {
	log := newAttemptLog()
	matrix := []Cell{{Experiment: "flaky", Run: func(ctx context.Context, r *Run) error {
		n := log.bump(r.Index)
		switch r.Index {
		case 3: // verification mismatch: the product, never retried
			return &cosim.CouplingError{Class: cosim.ClassProtocol, Op: "entity",
				Err: errors.New("acct mismatch")}
		case 5: // transient infra failure: heals on the second attempt
			if n == 1 {
				return &cosim.CouplingError{Class: cosim.ClassTimeout, Op: "recv",
					Err: errors.New("transient")}
			}
			return nil
		}
		return nil
	}}}
	run := obs.NewRun(obs.DefaultTraceCap)
	sum, err := Execute(context.Background(), Spec{
		Name: "retry", Seed: 7, Runs: 8, Shards: 2, Matrix: matrix, Obs: run,
		Policy: Policy{Retries: 2, RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := log.count(3); got != 1 {
		t.Errorf("mismatch run executed %d times, want exactly 1 attempt", got)
	}
	if got := log.count(5); got != 2 {
		t.Errorf("transient run executed %d times, want 2 (fail + healed retry)", got)
	}
	if sum.Failed != 1 {
		t.Errorf("failed = %d, want 1 (only the mismatch)", sum.Failed)
	}
	if sum.Completed != 7 {
		t.Errorf("completed = %d, want 7", sum.Completed)
	}
	if sum.Retried != 1 {
		t.Errorf("retried = %d, want 1", sum.Retried)
	}
	if sum.GaveUp != 0 {
		t.Errorf("gaveUp = %d, want 0", sum.GaveUp)
	}
	if !strings.Contains(sum.Digest(), "run=000003") || strings.Contains(sum.Digest(), "run=000005") {
		t.Errorf("digest must carry the mismatch and not the healed run:\n%s", sum.Digest())
	}
	var retries uint64
	for shard := 0; shard < sum.Shards; shard++ {
		retries += run.Reg().Counter(obs.ShardName("campaign.retries", shard)).Value()
	}
	if retries != 1 {
		t.Errorf("campaign.retries counters sum to %d, want 1", retries)
	}
}

// TestRetryBudgetExhaustion: a run that stays transient consumes exactly
// Retries+1 attempts, is recorded as a failure, and counts as a give-up.
func TestRetryBudgetExhaustion(t *testing.T) {
	log := newAttemptLog()
	matrix := []Cell{{Experiment: "down", Run: func(ctx context.Context, r *Run) error {
		log.bump(r.Index)
		return &cosim.CouplingError{Class: cosim.ClassClosed, Op: "dial",
			Err: errors.New("link down")}
	}}}
	sum, err := Execute(context.Background(), Spec{
		Name: "exhaust", Seed: 1, Runs: 2, Shards: 1, Matrix: matrix,
		Policy: Policy{Retries: 3, RetryBase: time.Microsecond, RetryCap: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := log.count(0); got != 4 {
		t.Errorf("run 0 executed %d times, want Retries+1 = 4", got)
	}
	if sum.Failed != 2 || sum.GaveUp != 2 {
		t.Errorf("failed/gaveUp = %d/%d, want 2/2", sum.Failed, sum.GaveUp)
	}
	if sum.Retried != 6 {
		t.Errorf("retried = %d, want 6 (3 extra attempts per run)", sum.Retried)
	}
}

// TestHungRunReaped is the acceptance property for the per-run deadline:
// a RunFunc blocked forever on a channel is reaped within timeout plus a
// small epsilon, fails with the typed "coupling/timeout/run" label, and
// the worker proceeds to the rest of its runs.
func TestHungRunReaped(t *testing.T) {
	hang := make(chan struct{})
	t.Cleanup(func() { close(hang) }) // release the abandoned goroutine
	matrix := []Cell{{Experiment: "hung", Run: func(ctx context.Context, r *Run) error {
		if r.Index == 2 {
			<-hang // ignores ctx on purpose: worst-case rig
		}
		return nil
	}}}
	const timeout = 150 * time.Millisecond
	start := time.Now()
	sum, err := Execute(context.Background(), Spec{
		Name: "hung", Seed: 1, Runs: 6, Shards: 2, Matrix: matrix,
		Policy: Policy{RunTimeout: timeout},
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > timeout+2*time.Second {
		t.Errorf("campaign took %v; hung run was not reaped near the %v deadline", elapsed, timeout)
	}
	if sum.Failed != 1 || sum.Completed != 5 {
		t.Fatalf("failed/completed = %d/%d, want 1/5 (worker must move past the hung run)",
			sum.Failed, sum.Completed)
	}
	f := sum.Failures[0]
	if f.Index != 2 {
		t.Errorf("failing index = %d, want 2", f.Index)
	}
	if f.Label() != "coupling/timeout/run" {
		t.Errorf("label = %q, want coupling/timeout/run", f.Label())
	}
	var ce *cosim.CouplingError
	if !errors.As(f.Err, &ce) || ce.Class != cosim.ClassTimeout {
		t.Errorf("reaped failure is not a typed ClassTimeout: %v", f.Err)
	}
}

// TestDeadlineCancelsRunContext: a cooperative run sees its context
// expire at the deadline, so OnCancel teardown fires without waiting for
// the reaper.
func TestDeadlineCancelsRunContext(t *testing.T) {
	torndown := make(chan struct{}, 1)
	matrix := []Cell{{Experiment: "coop", Run: func(ctx context.Context, r *Run) error {
		release := OnCancel(ctx, func() { torndown <- struct{}{} })
		defer release()
		select {
		case <-ctx.Done():
			return &cosim.CouplingError{Class: cosim.ClassTimeout, Op: "recv", Err: ctx.Err()}
		case <-time.After(5 * time.Second):
			return nil
		}
	}}}
	sum, err := Execute(context.Background(), Spec{
		Name: "coop", Seed: 1, Runs: 1, Shards: 1, Matrix: matrix,
		Policy: Policy{RunTimeout: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-torndown:
	default:
		t.Error("OnCancel teardown never fired at the deadline")
	}
	if sum.Failed != 1 || sum.Failures[0].Label() != "coupling/timeout/run" {
		t.Errorf("deadline failure = %+v, want coupling/timeout/run", sum.Failures)
	}
}

// TestPanicStackCaptured: the recovered stack of a panicking run rides
// the failure's triage detail.
func TestPanicStackCaptured(t *testing.T) {
	matrix := []Cell{{Experiment: "boom", Run: func(ctx context.Context, r *Run) error {
		if r.Index == 1 {
			explodeForStackTest()
		}
		return nil
	}}}
	sum, err := Execute(context.Background(), Spec{
		Name: "boom", Seed: 1, Runs: 4, Shards: 2, Matrix: matrix,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 1 {
		t.Fatalf("failed = %d, want 1", sum.Failed)
	}
	d := sum.Failures[0].Detail
	if !strings.Contains(d, "explodeForStackTest") || !strings.Contains(d, "goroutine") {
		t.Errorf("panic detail lacks the captured stack:\n%s", d)
	}
}

func explodeForStackTest() { panic("rig exploded") }

// TestBackoffDeterministic: the jittered schedule is a pure function of
// the run seed and stays within [d/2, d] of the capped exponential step.
func TestBackoffDeterministic(t *testing.T) {
	p := Policy{RetryBase: 10 * time.Millisecond, RetryCap: 80 * time.Millisecond}
	seq := func() []time.Duration {
		jr := sim.NewRNG(sim.DeriveSeed(0xfeed, backoffSalt))
		var out []time.Duration
		for attempt := 0; attempt < 6; attempt++ {
			out = append(out, p.backoff(attempt, jr))
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff attempt %d: %v vs %v — schedule not deterministic", i, a[i], b[i])
		}
		step := p.RetryBase << uint(i)
		if step > p.RetryCap || step <= 0 {
			step = p.RetryCap
		}
		if a[i] < step/2 || a[i] > step {
			t.Errorf("backoff attempt %d = %v outside [%v, %v]", i, a[i], step/2, step)
		}
	}
}

// TestRetriedRunStatsCountedOnce: only the final attempt's observations
// reach the aggregate.
func TestRetriedRunStatsCountedOnce(t *testing.T) {
	log := newAttemptLog()
	matrix := []Cell{{Experiment: "stats", Run: func(ctx context.Context, r *Run) error {
		r.Observe("probe", 1)
		if log.bump(r.Index) == 1 {
			return &cosim.CouplingError{Class: cosim.ClassTimeout, Op: "recv", Err: errors.New("flake")}
		}
		return nil
	}}}
	sum, err := Execute(context.Background(), Spec{
		Name: "stats", Seed: 3, Runs: 4, Shards: 2, Matrix: matrix,
		Policy: Policy{Retries: 1, RetryBase: time.Microsecond, RetryCap: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 4 || sum.Retried != 4 {
		t.Fatalf("completed/retried = %d/%d, want 4/4", sum.Completed, sum.Retried)
	}
	for _, s := range sum.Stats {
		if s.Name == "probe" && s.Count != 4 {
			t.Errorf("probe count = %d, want 4 (one per run, retries' observations dropped)", s.Count)
		}
	}
}

// TestReplayHonoursSupervision (satellite): a digest line born from a
// reaped hung run replays — under the same policy — to the same
// ClassTimeout label, and the replay terminates instead of hanging.
func TestReplayHonoursSupervision(t *testing.T) {
	hang := make(chan struct{})
	t.Cleanup(func() { close(hang) })
	matrix := []Cell{{Experiment: "hung", Run: func(ctx context.Context, r *Run) error {
		if r.Index%3 == 0 {
			<-hang
		}
		return nil
	}}}
	spec := Spec{
		Name: "replay-hung", Seed: 5, Runs: 6, Shards: 3, Matrix: matrix,
		Policy: Policy{RunTimeout: 100 * time.Millisecond},
	}
	sum, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failures) == 0 {
		t.Fatal("no timed-out failures to replay")
	}
	f := sum.Failures[0]
	res, err := Replay(context.Background(), spec, f.Index)
	if err != nil {
		t.Fatal(err)
	}
	got := Failure{Index: res.Index, Seed: res.Seed, Cell: res.Cell.Name(), Err: res.Err}
	if got.Label() != f.Label() || got.Label() != "coupling/timeout/run" {
		t.Errorf("replay label %q, campaign label %q, want coupling/timeout/run both",
			got.Label(), f.Label())
	}
	// Replay with retries against an attempt-dependent transient: the
	// replayed run heals the same way the campaign run did.
	log := newAttemptLog()
	flaky := Spec{
		Name: "replay-flaky", Seed: 5, Runs: 4,
		Matrix: []Cell{{Experiment: "flaky", Run: func(ctx context.Context, r *Run) error {
			if log.bump(r.Index) == 1 {
				return &cosim.CouplingError{Class: cosim.ClassTimeout, Op: "recv", Err: errors.New("flake")}
			}
			return nil
		}}},
		Policy: Policy{Retries: 1, RetryBase: time.Microsecond, RetryCap: time.Microsecond},
	}
	res, err = Replay(context.Background(), flaky, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || res.Attempts != 2 {
		t.Errorf("flaky replay err=%v attempts=%d, want nil/2", res.Err, res.Attempts)
	}
}

// TestSupervisionSpecValidation maps bad policy knobs to ErrSpec.
func TestSupervisionSpecValidation(t *testing.T) {
	good := Spec{Runs: 1, Matrix: syntheticMatrix()}
	for name, mut := range map[string]func(*Spec){
		"negative timeout":    func(s *Spec) { s.Policy.RunTimeout = -time.Second },
		"negative retries":    func(s *Spec) { s.Policy.Retries = -1 },
		"negative backoff":    func(s *Spec) { s.Policy.RetryBase = -time.Second },
		"negative quarantine": func(s *Spec) { s.Policy.QuarantineAfter = -2 },
		"negative cadence":    func(s *Spec) { s.CheckpointEvery = -1 },
	} {
		s := good
		mut(&s)
		if _, err := Execute(context.Background(), s); !errors.Is(err, ErrSpec) {
			t.Errorf("%s: err = %v, want ErrSpec", name, err)
		}
	}
}

// TestSupervisedDigestMatchesUnsupervised: with an idle policy (deadline
// generous, no transient failures), supervision must not perturb the
// digest or the aggregates.
func TestSupervisedDigestMatchesUnsupervised(t *testing.T) {
	ref := executeSynthetic(t, 3)
	sup, err := Execute(context.Background(), Spec{
		Name: "synthetic", Seed: 42, Runs: 200, Shards: 3, Matrix: syntheticMatrix(),
		Policy: Policy{RunTimeout: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sup.Digest() != ref.Digest() {
		t.Errorf("supervised digest differs from unsupervised:\n%s\nvs\n%s", sup.Digest(), ref.Digest())
	}
	if fmt.Sprintf("%+v", sup.Stats) != fmt.Sprintf("%+v", ref.Stats) {
		t.Errorf("supervised stats differ from unsupervised")
	}
}
