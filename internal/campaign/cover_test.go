package campaign

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"castanet/internal/obs"
)

// coverMatrix is the synthetic stand-in for instrumented rigs: every bin
// hit derives only from the run's seed, the contract the real rigs honour.
// One enumerated point, one range point and one cross, spread over two
// groups so the merge path exercises group-level union too.
func coverMatrix() []Cell {
	run := func(ctx context.Context, r *Run) error {
		rng := r.RNG()
		c := r.Cover()
		verdict := c.Group("synth.cmp").Point("verdict", "match", "mismatch")
		depth := c.Group("synth.queue").Range("depth", 0, 2, 8)
		outcome := c.Group("synth.queue").Cross("band_outcome",
			[]string{"low", "high"}, []string{"accept", "drop"})
		for i := 0; i < 4; i++ {
			v := rng.Uint64()
			if v%5 == 0 {
				verdict.Hit("mismatch")
			} else {
				verdict.Hit("match")
			}
			depth.Observe(int64(v % 12))
			band, out := "low", "accept"
			if v%12 >= 6 {
				band = "high"
			}
			if v%7 == 0 {
				out = "drop"
			}
			outcome.Hit(band, out)
		}
		r.Observe("draw", float64(rng.Uint64()%1000))
		return nil
	}
	return []Cell{
		{Experiment: "synth", Run: run},
		{Experiment: "synth", Fault: "noise", Run: run},
	}
}

// digestBody renders the full digest file minus its header line, which
// records the shard count and therefore legitimately differs between
// shard configurations. Everything below it must be byte-identical.
func digestBody(t *testing.T, sum *Summary) string {
	t.Helper()
	var b strings.Builder
	if err := sum.WriteDigest(&b); err != nil {
		t.Fatalf("WriteDigest: %v", err)
	}
	_, body, ok := strings.Cut(b.String(), "\n")
	if !ok {
		t.Fatalf("digest has no header line:\n%s", b.String())
	}
	return body
}

// coverageSection extracts just the coverage: block from a digest body.
func coverageSection(t *testing.T, sum *Summary) string {
	t.Helper()
	body := digestBody(t, sum)
	i := strings.Index(body, "coverage:")
	if i < 0 {
		t.Fatalf("digest has no coverage section:\n%s", body)
	}
	section := body[i:]
	if j := strings.Index(section, "\nrun="); j >= 0 {
		section = section[:j+1]
	}
	return section
}

func executeCover(t *testing.T, shards int) *Summary {
	t.Helper()
	sum, err := Execute(context.Background(), Spec{
		Name:     "cover-prop",
		Seed:     42,
		Runs:     120,
		Shards:   shards,
		Matrix:   coverMatrix(),
		Coverage: true,
	})
	if err != nil {
		t.Fatalf("Execute(shards=%d): %v", shards, err)
	}
	return sum
}

// TestCoverageSectionDeterministicAcrossShards is the tentpole merge
// property: the digest's coverage section — integer bin sums in a fixed
// sort order — must be byte-identical no matter how many shards the
// campaign fanned across.
func TestCoverageSectionDeterministicAcrossShards(t *testing.T) {
	ref := executeCover(t, 1)
	refSection := coverageSection(t, ref)
	if !strings.Contains(refSection, "coverage: groups=2") {
		t.Fatalf("reference coverage section malformed:\n%s", refSection)
	}
	if !strings.Contains(refSection, "cover point=synth.queue.band_outcome") {
		t.Fatalf("cross point missing from section:\n%s", refSection)
	}
	refBody := digestBody(t, ref)
	for _, shards := range []int{2, 5} {
		got := executeCover(t, shards)
		if s := coverageSection(t, got); s != refSection {
			t.Errorf("coverage section differs between 1 and %d shards:\n-- 1 shard --\n%s-- %d shards --\n%s",
				shards, refSection, shards, s)
		}
		if b := digestBody(t, got); b != refBody {
			t.Errorf("digest body differs between 1 and %d shards", shards)
		}
	}
}

// TestCoverageCheckpointResumeDeterministic extends the durability
// property to coverage: interrupt a checkpointed campaign mid-flight,
// resume it, and the merged coverage — and with it the whole digest body
// — is byte-identical to an uninterrupted run.
func TestCoverageCheckpointResumeDeterministic(t *testing.T) {
	for _, shards := range []int{2, 5} {
		base := Spec{
			Name:     "cover-ckpt",
			Seed:     7,
			Runs:     120,
			Shards:   shards,
			Matrix:   coverMatrix(),
			Coverage: true,
		}
		ref, err := Execute(context.Background(), base)
		if err != nil {
			t.Fatalf("shards=%d: reference Execute: %v", shards, err)
		}

		ck := filepath.Join(t.TempDir(), "campaign.ckpt")
		ctx, cancel := context.WithCancel(context.Background())
		interrupted := base
		interrupted.Checkpoint = ck
		interrupted.CheckpointEvery = 8
		interrupted.OnResult = interruptAfter(40, cancel)
		partial, err := Execute(ctx, interrupted)
		cancel()
		if err != nil {
			t.Fatalf("shards=%d: interrupted Execute: %v", shards, err)
		}
		if partial.Skipped == 0 {
			t.Fatalf("shards=%d: interruption skipped nothing; property is vacuous", shards)
		}
		if _, err := os.Stat(ck); err != nil {
			t.Fatalf("shards=%d: no checkpoint written: %v", shards, err)
		}

		resumed := base
		resumed.Checkpoint = ck
		res, err := Resume(context.Background(), resumed)
		if err != nil {
			t.Fatalf("shards=%d: Resume: %v", shards, err)
		}
		if res.Skipped != 0 {
			t.Errorf("shards=%d: resumed run skipped %d runs", shards, res.Skipped)
		}
		if got, want := digestBody(t, res), digestBody(t, ref); got != want {
			t.Errorf("shards=%d: resumed digest body differs:\n-- resumed --\n%s-- reference --\n%s",
				shards, got, want)
		}
		assertSameSummary(t, res, ref, fmt.Sprintf("cover shards=%d", shards))
	}
}

// TestCoverageOffStaysInvisible pins the opt-in contract: without
// Spec.Coverage the run hands rigs a nil registry (every hit a no-op),
// the summary carries no snapshot, and the digest gains no section.
func TestCoverageOffStaysInvisible(t *testing.T) {
	sawNil := false
	matrix := coverMatrix()
	inner := matrix[0].Run
	matrix[0].Run = func(ctx context.Context, r *Run) error {
		if r.Cover() == nil {
			sawNil = true
		}
		return inner(ctx, r)
	}
	sum, err := Execute(context.Background(), Spec{
		Name:   "cover-off",
		Seed:   3,
		Runs:   40,
		Shards: 2,
		Matrix: matrix,
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !sawNil {
		t.Error("coverage off: Run.Cover() was never nil")
	}
	if len(sum.Coverage) != 0 {
		t.Errorf("coverage off: summary carries %d cover groups", len(sum.Coverage))
	}
	var b strings.Builder
	if err := sum.WriteDigest(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "coverage:") {
		t.Errorf("coverage off: digest grew a coverage section:\n%s", b.String())
	}
}

// TestCoverageAbsorbedIntoLiveRegistry checks the telemetry mirror: a
// registry wired through Spec.Obs-style absorption reflects the same bin
// totals the summary reports.
func TestCoverageAbsorbedIntoLiveRegistry(t *testing.T) {
	sum := executeCover(t, 2)
	mirror := obs.NewCoverRegistry()
	mirror.Absorb(sum.Coverage)
	live := mirror.Snapshot()
	if len(live) != len(sum.Coverage) {
		t.Fatalf("mirror groups = %d, want %d", len(live), len(sum.Coverage))
	}
	for i, g := range sum.Coverage {
		for j, p := range g.Points {
			for k, bin := range p.Bins {
				if got := live[i].Points[j].Bins[k]; got != bin {
					t.Fatalf("mirror bin %s.%s[%d] = %+v, want %+v",
						g.Name, p.Name, k, got, bin)
				}
			}
		}
	}
}
