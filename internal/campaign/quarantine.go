package campaign

import "sync"

// The quarantine board decides, deterministically, which runs of a matrix
// cell are skipped once the cell's infrastructure looks dead. Determinism
// is the hard part: "M consecutive give-ups" is trivially racy when the
// cell's runs execute on different shards, so the board never consumes an
// outcome out of order. Each cell keeps a frontier over its own ordinal
// sequence (run index / matrix length): outcomes recorded ahead of the
// frontier wait in a pending set, and the frontier only advances through
// contiguous ordinals. The quarantine point e — the first ordinal at
// which QuarantineAfter consecutive preceding ordinals all exhausted
// their retries — is therefore a pure function of the per-index outcomes,
// identical for any shard count and any crash/resume point.
//
// Runs with ordinal >= e that raced ahead of the declaration stay in the
// pending set; the engine reclassifies them as quarantined when it
// summarizes (and their held aggregates are dropped), so the final counts
// and digest match a serial execution that never raced at all.

// runClass is the board's post-run classification of an executed run.
type runClass int

const (
	classCounted     runClass = iota // counts as completed/failed as usual
	classQuarantined                 // falls at or past the quarantine point
)

// pendingOutcome is one executed-but-not-yet-frontier-consumed run.
type pendingOutcome struct {
	index  uint64
	failed bool
	gaveUp bool
}

// cellBoard is one matrix cell's frontier state.
type cellBoard struct {
	decided     uint64 // ordinals < decided are consumed
	consec      int    // consecutive gave-up ordinals ending at decided-1
	chainFirst  uint64 // run index of the first give-up in the open chain
	quarantined bool
	e           uint64 // quarantine point: ordinals >= e are skipped
	firstFail   uint64 // run index of the give-up that opened the fatal chain
	pending     map[uint64]pendingOutcome
}

// quarantine is the campaign-wide board, one cellBoard per matrix cell.
type quarantine struct {
	mu    sync.Mutex
	after int
	cells []cellBoard
}

func newQuarantine(cells, after int) *quarantine {
	q := &quarantine{after: after, cells: make([]cellBoard, cells)}
	for i := range q.cells {
		q.cells[i].pending = make(map[uint64]pendingOutcome)
	}
	return q
}

// skip reports whether the run at the cell's ordinal is quarantined and
// must not execute. Nil-safe so the engine can call it unconditionally.
func (q *quarantine) skip(cell int, ord uint64) bool {
	if q == nil {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	c := &q.cells[cell]
	return c.quarantined && ord >= c.e
}

// record files one executed run's outcome and returns its classification.
// Re-records of already-consumed or already-pending ordinals are ignored,
// which makes the commit idempotent across a crash/resume boundary.
func (q *quarantine) record(cell int, ord, index uint64, gaveUp, failed bool) runClass {
	if q == nil {
		return classCounted
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	c := &q.cells[cell]
	if c.quarantined && ord >= c.e {
		return classQuarantined
	}
	if ord < c.decided {
		return classCounted
	}
	if _, dup := c.pending[ord]; !dup {
		c.pending[ord] = pendingOutcome{index: index, failed: failed, gaveUp: gaveUp}
		q.advance(c)
	}
	if c.quarantined && ord >= c.e {
		// This very record completed the fatal chain (or raced past it);
		// pull it back out so only summarize-time reclassification sees
		// the survivors.
		delete(c.pending, ord)
		return classQuarantined
	}
	return classCounted
}

// advance consumes contiguous pending ordinals at the frontier, tracking
// the open give-up chain and declaring quarantine when it reaches after.
// Any non-give-up outcome — success or a real verification failure —
// breaks the chain: quarantine is about dead infrastructure, not about
// failing designs.
func (q *quarantine) advance(c *cellBoard) {
	for !c.quarantined {
		o, ok := c.pending[c.decided]
		if !ok {
			return
		}
		delete(c.pending, c.decided)
		if o.gaveUp {
			if c.consec == 0 {
				c.chainFirst = o.index
			}
			c.consec++
		} else {
			c.consec = 0
		}
		c.decided++
		if c.consec >= q.after {
			c.quarantined = true
			c.e = c.decided
			c.firstFail = c.chainFirst
		}
	}
}

// finality reports whether the run at (cell, ord) has a final
// classification yet, and if so whether it must be dropped as
// quarantined. With force, an undecided ordinal (possible only after a
// cancelled campaign left frontier gaps) resolves to its current best
// classification.
func (q *quarantine) finality(cell int, ord uint64, force bool) (final, drop bool) {
	if q == nil {
		return true, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	c := &q.cells[cell]
	switch {
	case c.quarantined && ord >= c.e:
		return true, true
	case ord < c.decided:
		return true, false
	default:
		return force, false
	}
}
