package campaign

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"

	"castanet/internal/obs"
)

// ErrCheckpoint classifies checkpoint-file problems: corruption, version
// or fingerprint mismatch. The CLI maps it to usage-and-exit-2 territory —
// the operator pointed a campaign at the wrong (or a damaged) file.
var ErrCheckpoint = errors.New("campaign: bad checkpoint")

// Checkpoint file layout (all integers big-endian):
//
//	offset 0   magic  "CKPT"
//	offset 4   u16    version (2)
//	offset 6   u32    CRC-32 (IEEE) of the payload
//	offset 10  u32    payload length
//	offset 14  payload
//
// Payload v3 (strings are u32 length + bytes; f64 is IEEE-754 bits).
// v2 added a coverage block after each stats block — to the shard
// snapshot and to every held entry; v3 adds an activity block (the
// simulation profile) after each coverage block. Older files are rejected
// by version, not silently misread:
//
//	u64 spec fingerprint          u64 seed
//	u64 runs                      u32 shards (effective)
//	u32 matrix length             u8  board present
//	shards × shard snapshot:
//	  u64 done (watermark)        u64 completed
//	  u64 failTotal               u64 quarantined
//	  u64 retried                 u64 gaveUp
//	  u32 nstats × {str name, u64 count, f64 sum, f64 min, f64 max}
//	  u32 ngroups × {str group, u32 npoints ×
//	    {str point, u32 nbins × {str bin, u64 hits}}}
//	  u32 nsignals × {str name, u64 width, u64 events, u64 twoState}
//	  u32 nprocs   × {str name, u64 runs, u64 deltaRuns}
//	  u32 nfail  × {u64 index, u64 seed, str cell, str label, str detail}
//	  u32 nheld  × {u64 index, u8 hasFail, [fail as above],
//	    u32 nstats × {...}, u32 ngroups × {...},
//	    u32 nsignals × {...}, u32 nprocs × {...}}
//	board (when present): u32 ncells ×
//	  {u64 decided, u64 consec, u64 chainFirst, u8 quarantined,
//	   u64 e, u64 firstFail,
//	   u32 npending × {u64 ord, u64 index, u8 failed, u8 gaveUp}}
const (
	ckptMagic   = "CKPT"
	ckptVersion = 3
)

// ckFailure is one persisted digest entry. The label is materialized at
// save time (Failure.Label() of a live error) so a restored digest renders
// byte-identically without resurrecting the error value.
type ckFailure struct {
	index, seed         uint64
	cell, label, detail string
}

// ckHeld is one persisted held entry: a committed run whose stats and
// digest retention await their final quarantine classification. Cell and
// ordinal re-derive from the index.
type ckHeld struct {
	index    uint64
	fail     *ckFailure
	stats    []Stat
	cover    []obs.CoverGroupSnap
	activity obs.ActivitySnap
}

// ckShard is one shard's persisted snapshot.
type ckShard struct {
	done, completed, failTotal   int
	quarantined, retried, gaveUp int
	stats                        []Stat
	cover                        []obs.CoverGroupSnap
	activity                     obs.ActivitySnap
	failures                     []ckFailure
	held                         []ckHeld
}

// ckPending mirrors pendingOutcome with its ordinal key.
type ckPending struct {
	ord, index     uint64
	failed, gaveUp bool
}

// ckCell mirrors cellBoard.
type ckCell struct {
	decided, chainFirst, e, firstFail uint64
	consec                            int
	quarantined                       bool
	pending                           []ckPending
}

// checkpointState is a decoded checkpoint.
type checkpointState struct {
	fingerprint uint64
	seed        uint64
	runs        int
	shards      int
	matrixLen   int
	snaps       []ckShard
	board       []ckCell
	hasBoard    bool
}

// specFingerprint hashes everything the resumed campaign must agree on:
// identity, seed, run count, effective shard count (per-shard float sums
// only merge deterministically at a fixed shard count), digest bound,
// supervision policy, the coverage and profile flags (a resume must
// collect each exactly as the checkpointed campaign did, or the merged
// sections would be partial), and the matrix cell names in order.
func specFingerprint(s *Spec, shards int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "ckpt-v3|%s|%d|%d|%d|%d|%v|%d|%v|%v|%d|cov=%v|prof=%v|",
		s.Name, s.Seed, s.Runs, shards, s.digestMax(),
		s.Policy.RunTimeout, s.Policy.Retries,
		s.Policy.retryBase(), s.Policy.retryCap(), s.Policy.QuarantineAfter,
		s.Coverage, s.Profile)
	for _, c := range s.Matrix {
		fmt.Fprintf(h, "%s|", c.Name())
	}
	return h.Sum64()
}

// ckEnc appends the payload fields.
type ckEnc struct{ b []byte }

func (e *ckEnc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *ckEnc) u16(v uint16) { e.b = binary.BigEndian.AppendUint16(e.b, v) }
func (e *ckEnc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *ckEnc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *ckEnc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *ckEnc) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *ckEnc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *ckEnc) stats(ss []Stat) {
	e.u32(uint32(len(ss)))
	for _, s := range ss {
		e.str(s.Name)
		e.u64(s.Count)
		e.f64(s.Sum)
		e.f64(s.Min)
		e.f64(s.Max)
	}
}

func (e *ckEnc) cover(gs []obs.CoverGroupSnap) {
	e.u32(uint32(len(gs)))
	for _, g := range gs {
		e.str(g.Name)
		e.u32(uint32(len(g.Points)))
		for _, p := range g.Points {
			e.str(p.Name)
			e.u32(uint32(len(p.Bins)))
			for _, b := range p.Bins {
				e.str(b.Label)
				e.u64(b.Hits)
			}
		}
	}
}

func (e *ckEnc) activity(a obs.ActivitySnap) {
	e.u32(uint32(len(a.Signals)))
	for _, s := range a.Signals {
		e.str(s.Name)
		e.u64(uint64(s.Width))
		e.u64(s.Events)
		e.u64(s.TwoState)
	}
	e.u32(uint32(len(a.Processes)))
	for _, p := range a.Processes {
		e.str(p.Name)
		e.u64(p.Runs)
		e.u64(p.DeltaRuns)
	}
}

func (e *ckEnc) failure(f ckFailure) {
	e.u64(f.index)
	e.u64(f.seed)
	e.str(f.cell)
	e.str(f.label)
	e.str(f.detail)
}

// ckDec consumes the payload with a sticky error; every read is bounds-
// checked so a truncated payload degrades to ErrCheckpoint, never a panic.
type ckDec struct {
	b   []byte
	off int
	err error
}

func (d *ckDec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated payload at offset %d", ErrCheckpoint, d.off)
	}
}

func (d *ckDec) take(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *ckDec) u8() uint8 {
	if s := d.take(1); s != nil {
		return s[0]
	}
	return 0
}

func (d *ckDec) u32() uint32 {
	if s := d.take(4); s != nil {
		return binary.BigEndian.Uint32(s)
	}
	return 0
}

func (d *ckDec) u64() uint64 {
	if s := d.take(8); s != nil {
		return binary.BigEndian.Uint64(s)
	}
	return 0
}

func (d *ckDec) f64() float64  { return math.Float64frombits(d.u64()) }
func (d *ckDec) boolean() bool { return d.u8() != 0 }
func (d *ckDec) str() string   { return string(d.take(int(d.u32()))) }
func (d *ckDec) count() int    { return int(d.u32()) }
func (d *ckDec) stats() []Stat {
	n := d.count()
	if d.err != nil {
		return nil
	}
	out := make([]Stat, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, Stat{Name: d.str(), Count: d.u64(),
			Sum: d.f64(), Min: d.f64(), Max: d.f64()})
	}
	return out
}

func (d *ckDec) cover() []obs.CoverGroupSnap {
	n := d.count()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]obs.CoverGroupSnap, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		g := obs.CoverGroupSnap{Name: d.str()}
		np := d.count()
		for j := 0; j < np && d.err == nil; j++ {
			p := obs.CoverPointSnap{Name: d.str()}
			nb := d.count()
			for k := 0; k < nb && d.err == nil; k++ {
				p.Bins = append(p.Bins, obs.CoverBin{Label: d.str(), Hits: d.u64()})
			}
			g.Points = append(g.Points, p)
		}
		out = append(out, g)
	}
	return out
}

func (d *ckDec) activity() obs.ActivitySnap {
	var a obs.ActivitySnap
	ns := d.count()
	for i := 0; i < ns && d.err == nil; i++ {
		a.Signals = append(a.Signals, obs.SignalActivity{
			Name: d.str(), Width: int(d.u64()), Events: d.u64(), TwoState: d.u64()})
	}
	np := d.count()
	for i := 0; i < np && d.err == nil; i++ {
		a.Processes = append(a.Processes, obs.ProcessActivity{
			Name: d.str(), Runs: d.u64(), DeltaRuns: d.u64()})
	}
	if d.err != nil {
		return obs.ActivitySnap{}
	}
	return a
}

func (d *ckDec) failure() ckFailure {
	return ckFailure{index: d.u64(), seed: d.u64(),
		cell: d.str(), label: d.str(), detail: d.str()}
}

func encodeCheckpoint(ck *checkpointState) []byte {
	var e ckEnc
	e.u64(ck.fingerprint)
	e.u64(ck.seed)
	e.u64(uint64(ck.runs))
	e.u32(uint32(ck.shards))
	e.u32(uint32(ck.matrixLen))
	e.boolean(ck.hasBoard)
	for _, s := range ck.snaps {
		e.u64(uint64(s.done))
		e.u64(uint64(s.completed))
		e.u64(uint64(s.failTotal))
		e.u64(uint64(s.quarantined))
		e.u64(uint64(s.retried))
		e.u64(uint64(s.gaveUp))
		e.stats(s.stats)
		e.cover(s.cover)
		e.activity(s.activity)
		e.u32(uint32(len(s.failures)))
		for _, f := range s.failures {
			e.failure(f)
		}
		e.u32(uint32(len(s.held)))
		for _, h := range s.held {
			e.u64(h.index)
			e.boolean(h.fail != nil)
			if h.fail != nil {
				e.failure(*h.fail)
			}
			e.stats(h.stats)
			e.cover(h.cover)
			e.activity(h.activity)
		}
	}
	if ck.hasBoard {
		e.u32(uint32(len(ck.board)))
		for _, c := range ck.board {
			e.u64(c.decided)
			e.u64(uint64(c.consec))
			e.u64(c.chainFirst)
			e.boolean(c.quarantined)
			e.u64(c.e)
			e.u64(c.firstFail)
			e.u32(uint32(len(c.pending)))
			for _, p := range c.pending {
				e.u64(p.ord)
				e.u64(p.index)
				e.boolean(p.failed)
				e.boolean(p.gaveUp)
			}
		}
	}
	return e.b
}

func decodeCheckpoint(payload []byte) (*checkpointState, error) {
	d := &ckDec{b: payload}
	ck := &checkpointState{
		fingerprint: d.u64(),
		seed:        d.u64(),
		runs:        int(d.u64()),
		shards:      int(d.u32()),
		matrixLen:   int(d.u32()),
		hasBoard:    d.boolean(),
	}
	if d.err != nil {
		return nil, d.err
	}
	if ck.shards < 1 || ck.runs < 1 {
		return nil, fmt.Errorf("%w: nonsensical shape shards=%d runs=%d", ErrCheckpoint, ck.shards, ck.runs)
	}
	for s := 0; s < ck.shards && d.err == nil; s++ {
		snap := ckShard{
			done:        int(d.u64()),
			completed:   int(d.u64()),
			failTotal:   int(d.u64()),
			quarantined: int(d.u64()),
			retried:     int(d.u64()),
			gaveUp:      int(d.u64()),
			stats:       d.stats(),
		}
		snap.cover = d.cover()
		snap.activity = d.activity()
		nfail := d.count()
		for i := 0; i < nfail && d.err == nil; i++ {
			snap.failures = append(snap.failures, d.failure())
		}
		nheld := d.count()
		for i := 0; i < nheld && d.err == nil; i++ {
			h := ckHeld{index: d.u64()}
			if d.boolean() {
				f := d.failure()
				h.fail = &f
			}
			h.stats = d.stats()
			h.cover = d.cover()
			h.activity = d.activity()
			snap.held = append(snap.held, h)
		}
		ck.snaps = append(ck.snaps, snap)
	}
	if ck.hasBoard {
		ncells := d.count()
		for i := 0; i < ncells && d.err == nil; i++ {
			c := ckCell{
				decided:     d.u64(),
				consec:      int(d.u64()),
				chainFirst:  d.u64(),
				quarantined: d.boolean(),
				e:           d.u64(),
				firstFail:   d.u64(),
			}
			npend := d.count()
			for j := 0; j < npend && d.err == nil; j++ {
				c.pending = append(c.pending, ckPending{
					ord: d.u64(), index: d.u64(),
					failed: d.boolean(), gaveUp: d.boolean()})
			}
			ck.board = append(ck.board, c)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCheckpoint, len(d.b)-d.off)
	}
	return ck, nil
}

// saveCheckpoint writes the checkpoint atomically: temp file in the same
// directory, fsync, rename over the target, fsync the directory. A crash
// at any point leaves either the previous checkpoint or the new one,
// never a torn file.
func saveCheckpoint(path string, ck *checkpointState) error {
	payload := encodeCheckpoint(ck)
	var hdr ckEnc
	hdr.b = append(hdr.b, ckptMagic...)
	hdr.u16(ckptVersion)
	hdr.u32(crc32.ChecksumIEEE(payload))
	hdr.u32(uint32(len(payload)))

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(hdr.b, payload...))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// loadCheckpoint reads and validates a checkpoint file. A missing file is
// reported as os.ErrNotExist so Resume can fall back to a fresh start.
func loadCheckpoint(path string) (*checkpointState, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 14 || string(raw[:4]) != ckptMagic {
		return nil, fmt.Errorf("%w: %s is not a checkpoint file", ErrCheckpoint, path)
	}
	if v := binary.BigEndian.Uint16(raw[4:6]); v != ckptVersion {
		return nil, fmt.Errorf("%w: %s has version %d, this build reads %d", ErrCheckpoint, path, v, ckptVersion)
	}
	crc := binary.BigEndian.Uint32(raw[6:10])
	plen := int(binary.BigEndian.Uint32(raw[10:14]))
	if plen != len(raw)-14 {
		return nil, fmt.Errorf("%w: %s payload length %d, file carries %d", ErrCheckpoint, path, plen, len(raw)-14)
	}
	payload := raw[14:]
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, fmt.Errorf("%w: %s CRC mismatch (file %08x, payload %08x)", ErrCheckpoint, path, crc, got)
	}
	ck, err := decodeCheckpoint(payload)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ck, nil
}
