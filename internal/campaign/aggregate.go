package campaign

import (
	"sort"

	"castanet/internal/obs"
)

// histBounds are the bucket upper bounds of the per-stat registry
// histograms. Campaign stats span cells-per-run counts, latencies in
// seconds and cycle counts, so the buckets cover nine decades.
var histBounds = []float64{1e-3, 1e-2, 0.1, 1, 10, 100, 1e3, 1e4, 1e5, 1e6}

// statAgg is the streaming aggregate of one named stat: O(1) memory per
// stat however many runs observe it.
type statAgg struct {
	count    uint64
	sum      float64
	min, max float64
}

func (s *statAgg) observe(v float64) {
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
}

// merge folds b into s. count/min/max merge is exactly order-independent;
// the float64 sum (and so the mean) is merged in shard order, which is
// deterministic for a fixed shard count.
func (s *statAgg) merge(b *statAgg) {
	if b.count == 0 {
		return
	}
	if s.count == 0 || b.min < s.min {
		s.min = b.min
	}
	if s.count == 0 || b.max > s.max {
		s.max = b.max
	}
	s.count += b.count
	s.sum += b.sum
}

// agg is one shard's stat table plus its accumulated functional-coverage
// snapshot. Workers own their agg exclusively while running; no locking
// is needed until the engine merges them.
type agg struct {
	stats map[string]*statAgg
	// cover is the bin-wise sum of the committed runs' coverage
	// snapshots. Unlike the float64 stat sums, the integer bin merge is
	// fully order-independent, so coverage is byte-identical at any
	// shard count by construction.
	cover []obs.CoverGroupSnap
	// activity is the entry-wise sum of the committed runs' simulation
	// activity profiles (per-signal events, per-process runs). The same
	// integer-merge argument as cover applies: byte-identical at any
	// shard count.
	activity obs.ActivitySnap
}

func newAgg() *agg { return &agg{stats: make(map[string]*statAgg)} }

func (a *agg) observe(name string, v float64) {
	s, ok := a.stats[name]
	if !ok {
		s = &statAgg{}
		a.stats[name] = s
	}
	s.observe(v)
}

func (a *agg) merge(b *agg) {
	for name, bs := range b.stats {
		s, ok := a.stats[name]
		if !ok {
			s = &statAgg{}
			a.stats[name] = s
		}
		s.merge(bs)
	}
	a.cover = obs.MergeCover(a.cover, b.cover)
	a.activity = obs.MergeActivity(a.activity, b.activity)
}

// Stat is one aggregated campaign statistic.
type Stat struct {
	Name  string
	Count uint64
	Sum   float64
	Min   float64
	Max   float64
}

// Mean returns Sum/Count (0 for an empty stat).
func (s Stat) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// aggFromStats rebuilds a shard aggregate from its checkpointed summary;
// the Stat fields are exactly the statAgg fields, so the round trip is
// lossless.
func aggFromStats(ss []Stat) *agg {
	a := newAgg()
	for _, s := range ss {
		a.stats[s.Name] = &statAgg{count: s.Count, sum: s.Sum, min: s.Min, max: s.Max}
	}
	return a
}

// summary flattens the table, sorted by name for stable reports.
func (a *agg) summary() []Stat {
	out := make([]Stat, 0, len(a.stats))
	for name, s := range a.stats {
		out = append(out, Stat{Name: name, Count: s.count, Sum: s.sum, Min: s.min, Max: s.max})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// publishSummary mirrors the campaign totals and per-stat aggregates into
// the registry as gauges, alongside the per-shard counters the workers
// maintained while running.
func publishSummary(reg *obs.Registry, sum *Summary) {
	if reg == nil {
		return
	}
	reg.Gauge("campaign.completed").Set(float64(sum.Completed))
	reg.Gauge("campaign.failed").Set(float64(sum.Failed))
	reg.Gauge("campaign.skipped").Set(float64(sum.Skipped))
	reg.Gauge("campaign.quarantined").Set(float64(sum.Quarantined))
	reg.Gauge("campaign.retried").Set(float64(sum.Retried))
	reg.Gauge("campaign.gaveup").Set(float64(sum.GaveUp))
	reg.Gauge("campaign.shards").Set(float64(sum.Shards))
	for _, s := range sum.Stats {
		reg.Gauge("campaign.stat." + s.Name + ".mean").Set(s.Mean())
		reg.Gauge("campaign.stat." + s.Name + ".min").Set(s.Min)
		reg.Gauge("campaign.stat." + s.Name + ".max").Set(s.Max)
	}
}
