// Package campaign fans a matrix of co-verification runs — {experiment ×
// seed × fault-profile} — across a bounded worker pool. One castanet
// process stops meaning one experiment: a campaign schedules thousands of
// deterministic, independently replayable verification runs onto
// GOMAXPROCS-bounded shards, streams their statistics into a bounded
// aggregate, and distils failures into a digest whose lines reproduce the
// exact failing run in isolation.
//
// Determinism is structural, not incidental:
//
//   - Run i draws its seed from sim.DeriveSeed(campaign seed, i), so the
//     stimulus of a run depends only on the (campaign seed, index) pair —
//     never on scheduling, shard count, or the runs around it.
//   - Run i executes matrix cell i % len(Matrix), so the experiment ×
//     fault-profile coverage pattern is a pure function of the index.
//   - Shard s owns exactly the indices ≡ s (mod Shards); each shard's
//     work list and failure stream ascend by index, and the final digest
//     is an index-ordered merge — byte-identical for any shard count.
//
// Every run builds its own engine stack (scheduler, HDL kernel,
// transports) through its RunFunc; runs share nothing mutable, which the
// package's -race tests enforce.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"castanet/internal/cosim"
	"castanet/internal/obs"
	"castanet/internal/sim"
)

// Cell is one column of the campaign matrix: an experiment paired with a
// fault profile. Run index i executes Matrix[i%len(Matrix)], so a matrix
// of E experiments × F fault profiles is swept every E·F runs and every
// cell sees a fresh derived seed on each revisit.
type Cell struct {
	Experiment string
	Fault      string // fault-profile name; "" is the clean channel
	Run        RunFunc
}

// Name is the cell's digest label.
func (c Cell) Name() string {
	if c.Fault == "" {
		return c.Experiment
	}
	return c.Experiment + "/" + c.Fault
}

// RunFunc executes one verification run. It must elaborate every engine it
// needs from scratch (runs execute concurrently and share nothing), honour
// ctx so fail-fast cancellation can tear down in-flight couplings (see
// OnCancel), and return nil for a verified run or a deterministic error —
// ideally a typed *cosim.CouplingError — for a failed one.
type RunFunc func(ctx context.Context, r *Run) error

// Run is the per-run context handed to a RunFunc.
type Run struct {
	Index uint64
	Seed  uint64 // sim.DeriveSeed(campaign seed, Index)
	Shard int
	Cell  Cell

	agg   *agg
	reg   *obs.Registry
	value any
}

// RNG returns a fresh generator over the run's derived stream. Every call
// restarts the stream, so a RunFunc normally calls it once.
func (r *Run) RNG() *sim.RNG { return sim.NewRNG(r.Seed) }

// Observe streams one named observation into the campaign aggregate
// (count/sum/min/max per stat) and, when the campaign is instrumented,
// into the registry histogram "campaign.stat.<name>".
func (r *Run) Observe(stat string, v float64) {
	r.agg.observe(stat, v)
	if r.reg != nil {
		r.reg.Histogram("campaign.stat."+stat, histBounds...).Observe(v)
	}
}

// SetValue attaches a payload to the run's Result for Spec.OnResult
// collectors. Without a collector the payload is dropped when the run
// finishes, keeping campaign memory bounded.
func (r *Run) SetValue(v any) { r.value = v }

// Spec describes a campaign.
type Spec struct {
	// Name labels reports and replay lines.
	Name string
	// Seed is the campaign master seed every per-run seed derives from.
	Seed uint64
	// Runs is the total number of runs.
	Runs int
	// Shards is the worker count; 0 selects GOMAXPROCS. Run i is
	// statically assigned to shard i % Shards, so each shard's work list
	// is a pure function of (Runs, Shards) — the precondition for the
	// digest's shard-count independence.
	Shards int
	// FailFast cancels the remaining runs at the first failure. In-flight
	// runs are torn down through their contexts; runs not yet started are
	// reported as skipped.
	FailFast bool
	// DigestMax bounds the failure digest (default 16); failures beyond it
	// are counted but not retained.
	DigestMax int
	// Matrix is the experiment × fault-profile cell list.
	Matrix []Cell
	// Obs, when non-nil, receives campaign metrics — per-shard labelled
	// counters campaign.runs.shardK / campaign.failures.shardK, stat
	// histograms, end-of-campaign stat gauges — and a campaign-level trace
	// with one track per worker. Campaign trace timestamps are wall time
	// (µs), not simulated time: each run restarts its own simulation
	// clocks, so wall time is the only axis shared by all runs.
	Obs *obs.Run
	// OnResult, when non-nil, is invoked serially (in completion order,
	// not index order) with every finished run's Result, including its
	// SetValue payload. Callers needing index order can slot results by
	// Result.Index.
	OnResult func(Result)
}

// ErrSpec classifies campaign parameter errors, so the CLI can map them to
// usage-and-exit-2 like any other flag validation failure.
var ErrSpec = errors.New("campaign: invalid spec")

func (s *Spec) validate() error {
	switch {
	case s.Runs < 1:
		return fmt.Errorf("%w: runs = %d, want >= 1", ErrSpec, s.Runs)
	case s.Shards < 0:
		return fmt.Errorf("%w: shards = %d, want >= 0", ErrSpec, s.Shards)
	case len(s.Matrix) == 0:
		return fmt.Errorf("%w: empty matrix", ErrSpec)
	case s.DigestMax < 0:
		return fmt.Errorf("%w: digest max = %d, want >= 0", ErrSpec, s.DigestMax)
	}
	return nil
}

func (s *Spec) shardCount() int {
	if s.Shards > 0 {
		return s.Shards
	}
	return runtime.GOMAXPROCS(0)
}

func (s *Spec) digestMax() int {
	if s.DigestMax > 0 {
		return s.DigestMax
	}
	return 16
}

// cellFor returns the matrix cell of run index i.
func (s *Spec) cellFor(i uint64) Cell { return s.Matrix[i%uint64(len(s.Matrix))] }

// Result is one finished run.
type Result struct {
	Index uint64
	Seed  uint64
	Cell  Cell
	Shard int
	Err   error
	Value any
	Wall  time.Duration
}

// Failure is one digest entry.
type Failure struct {
	Index uint64
	Seed  uint64
	Cell  string
	Err   error
	// Detail is the run's attached triage bundle (waterfall +
	// flight-recorder dump, see Detailed). It is printed by WriteReport
	// but deliberately kept out of Digest(), whose lines must stay
	// one-per-failure and byte-identical across shard counts.
	Detail string
}

// Detailer is implemented by errors carrying a multi-line triage detail
// (Detailed wraps any error with one). The campaign engine extracts it
// into Failure.Detail so reports show the failing run's flight-recorder
// dump and cell waterfall without a re-run.
type Detailer interface {
	FailureDetail() string
}

// detailedError attaches a triage detail to a run failure while leaving
// the wrapped error's identity (errors.Is/As, Error text) untouched.
type detailedError struct {
	err    error
	detail string
}

func (e *detailedError) Error() string         { return e.err.Error() }
func (e *detailedError) Unwrap() error         { return e.err }
func (e *detailedError) FailureDetail() string { return e.detail }

// Detailed wraps a run failure with its triage detail. A nil err or
// empty detail passes err through unchanged.
func Detailed(err error, detail string) error {
	if err == nil || detail == "" {
		return err
	}
	return &detailedError{err: err, detail: detail}
}

// Label renders the failure deterministically: typed coupling errors
// collapse to their class/op pair (their full text can carry
// timing-dependent detail), anything else prints its error text, which
// sources are required to keep deterministic.
func (f Failure) Label() string {
	var ce *cosim.CouplingError
	if errors.As(f.Err, &ce) {
		return fmt.Sprintf("coupling/%s/%s", ce.Class, ce.Op)
	}
	if f.Err == nil {
		return "ok"
	}
	return f.Err.Error()
}

// shardState accumulates one worker's output; workers never share state
// while running, the engine merges shard states in shard order afterwards.
type shardState struct {
	agg       *agg
	failures  []Failure // ascending by index, bounded by digestMax
	failTotal int
	completed int
	skipped   int
}

// Execute runs the campaign and blocks until every worker has drained or
// been cancelled. The returned Summary is complete even when ctx was
// cancelled mid-campaign; the error reports spec problems only.
func Execute(ctx context.Context, spec Spec) (*Summary, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	shards := spec.shardCount()
	if shards > spec.Runs {
		shards = spec.Runs
	}
	epoch := time.Now()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Result collection is serialized through one channel so OnResult
	// never observes two runs at once.
	var results chan Result
	collectorDone := make(chan struct{})
	if spec.OnResult != nil {
		results = make(chan Result, shards)
		go func() {
			defer close(collectorDone)
			for res := range results {
				spec.OnResult(res)
			}
		}()
	} else {
		close(collectorDone)
	}

	states := make([]*shardState, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		st := &shardState{agg: newAgg()}
		states[s] = st
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			runShard(runCtx, cancel, &spec, shard, shards, st, results, epoch)
		}(s)
	}
	wg.Wait()
	if results != nil {
		close(results)
	}
	<-collectorDone

	sum := &Summary{
		Name:     spec.Name,
		Seed:     spec.Seed,
		Runs:     spec.Runs,
		Shards:   shards,
		FailFast: spec.FailFast,
		Wall:     time.Since(epoch),
	}
	merged := newAgg()
	var lists [][]Failure
	for _, st := range states {
		merged.merge(st.agg)
		sum.Completed += st.completed
		sum.Failed += st.failTotal
		sum.Skipped += st.skipped
		lists = append(lists, st.failures)
	}
	sum.Stats = merged.summary()
	sum.Failures = mergeFailures(lists, spec.digestMax())
	publishSummary(spec.Obs.Reg(), sum)
	return sum, nil
}

// runShard executes the shard's statically assigned indices in ascending
// order.
func runShard(ctx context.Context, cancel context.CancelFunc, spec *Spec,
	shard, shards int, st *shardState, results chan<- Result, epoch time.Time) {

	reg := spec.Obs.Reg()
	tr := spec.Obs.Trace()
	track := obs.TrackWorker(shard)
	runsC := reg.ShardCounter("campaign.runs", shard)
	failsC := reg.ShardCounter("campaign.failures", shard)
	wallPS := func() int64 { return time.Since(epoch).Nanoseconds() * 1000 }

	for i := uint64(shard); i < uint64(spec.Runs); i += uint64(shards) {
		if ctx.Err() != nil {
			st.skipped++
			continue
		}
		cell := spec.cellFor(i)
		r := &Run{Index: i, Seed: sim.DeriveSeed(spec.Seed, i), Shard: shard,
			Cell: cell, agg: st.agg, reg: reg}
		tr.Begin(track, cell.Name(), wallPS())
		start := time.Now()
		err := runOne(ctx, cell.Run, r)
		wall := time.Since(start)
		tr.End(track, cell.Name(), wallPS())
		runsC.Inc()
		switch {
		case err == nil:
			st.completed++
		case ctx.Err() != nil:
			// The run was torn down by cancellation; its error is an
			// artifact of the teardown, not a finding.
			st.skipped++
		default:
			failsC.Inc()
			st.failTotal++
			if len(st.failures) < spec.digestMax() {
				f := Failure{Index: i, Seed: r.Seed, Cell: cell.Name(), Err: err}
				var det Detailer
				if errors.As(err, &det) {
					f.Detail = det.FailureDetail()
				}
				st.failures = append(st.failures, f)
			}
			tr.Emit(track, "fail:"+cell.Name(), wallPS())
			if spec.FailFast {
				cancel()
			}
		}
		if results != nil {
			results <- Result{Index: i, Seed: r.Seed, Cell: cell, Shard: shard,
				Err: err, Value: r.value, Wall: wall}
		}
	}
}

// runOne executes the run with panic containment: a panicking rig fails
// its own run instead of killing the campaign's worker pool.
func runOne(ctx context.Context, fn RunFunc, r *Run) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("campaign: run panicked: %v", p)
		}
	}()
	return fn(ctx, r)
}

// mergeFailures k-way merges per-shard ascending failure lists into one
// index-ordered digest, truncated to max entries.
func mergeFailures(lists [][]Failure, max int) []Failure {
	var out []Failure
	heads := make([]int, len(lists))
	for len(out) < max {
		best := -1
		for s, h := range heads {
			if h >= len(lists[s]) {
				continue
			}
			if best < 0 || lists[s][h].Index < lists[best][heads[best]].Index {
				best = s
			}
		}
		if best < 0 {
			break
		}
		out = append(out, lists[best][heads[best]])
		heads[best]++
	}
	return out
}

// Replay executes exactly the single run a digest line names, serially on
// the calling goroutine, and returns its result. The run reconstructs the
// identical (seed, cell) pair the campaign used, so a digest failure
// reproduces bit-exactly without executing any run around it.
func Replay(ctx context.Context, spec Spec, index uint64) (Result, error) {
	if err := spec.validate(); err != nil {
		return Result{}, err
	}
	if index >= uint64(spec.Runs) {
		return Result{}, fmt.Errorf("%w: replay index %d outside 0..%d", ErrSpec, index, spec.Runs-1)
	}
	cell := spec.cellFor(index)
	r := &Run{Index: index, Seed: sim.DeriveSeed(spec.Seed, index), Cell: cell,
		agg: newAgg(), reg: spec.Obs.Reg()}
	start := time.Now()
	err := runOne(ctx, cell.Run, r)
	return Result{Index: index, Seed: r.Seed, Cell: cell, Err: err,
		Value: r.value, Wall: time.Since(start)}, nil
}

// OnCancel arranges teardown for an in-flight run: stop is invoked once if
// ctx is cancelled before the returned release function is called. Sources
// bracket a blocking rig run with it so fail-fast cancellation closes the
// rig's coupling transport, turning the blocked run into a typed coupling
// error instead of letting it outlive the campaign. release blocks until
// the watcher goroutine has exited, so no goroutine leaks past the run.
func OnCancel(ctx context.Context, stop func()) (release func()) {
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-ctx.Done():
			stop()
		case <-done:
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}
