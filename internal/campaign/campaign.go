// Package campaign fans a matrix of co-verification runs — {experiment ×
// seed × fault-profile} — across a bounded worker pool. One castanet
// process stops meaning one experiment: a campaign schedules thousands of
// deterministic, independently replayable verification runs onto
// GOMAXPROCS-bounded shards, streams their statistics into a bounded
// aggregate, and distils failures into a digest whose lines reproduce the
// exact failing run in isolation.
//
// Determinism is structural, not incidental:
//
//   - Run i draws its seed from sim.DeriveSeed(campaign seed, i), so the
//     stimulus of a run depends only on the (campaign seed, index) pair —
//     never on scheduling, shard count, or the runs around it.
//   - Run i executes matrix cell i % len(Matrix), so the experiment ×
//     fault-profile coverage pattern is a pure function of the index.
//   - Shard s owns exactly the indices ≡ s (mod Shards); each shard's
//     work list and failure stream ascend by index, and the final digest
//     is an index-ordered merge — byte-identical for any shard count.
//
// On top of that sits the durability layer (Policy, Spec.Checkpoint):
// per-run deadlines reap hung rigs into typed timeouts, infra-class
// failures retry with seed-derived backoff, dead cells quarantine, and a
// CRC-guarded checkpoint file lets Resume continue a killed campaign from
// its per-shard watermarks — with a digest byte-identical to the
// uninterrupted run, which the package's property tests enforce.
//
// Every run builds its own engine stack (scheduler, HDL kernel,
// transports) through its RunFunc; runs share nothing mutable, which the
// package's -race tests enforce.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"castanet/internal/cosim"
	"castanet/internal/obs"
	"castanet/internal/sim"
)

// Cell is one column of the campaign matrix: an experiment paired with a
// fault profile. Run index i executes Matrix[i%len(Matrix)], so a matrix
// of E experiments × F fault profiles is swept every E·F runs and every
// cell sees a fresh derived seed on each revisit.
type Cell struct {
	Experiment string
	Fault      string // fault-profile name; "" is the clean channel
	Run        RunFunc
}

// Name is the cell's digest label.
func (c Cell) Name() string {
	if c.Fault == "" {
		return c.Experiment
	}
	return c.Experiment + "/" + c.Fault
}

// RunFunc executes one verification run. It must elaborate every engine it
// needs from scratch (runs execute concurrently and share nothing), honour
// ctx so fail-fast cancellation can tear down in-flight couplings (see
// OnCancel), and return nil for a verified run or a deterministic error —
// ideally a typed *cosim.CouplingError — for a failed one.
type RunFunc func(ctx context.Context, r *Run) error

// Run is the per-run context handed to a RunFunc.
type Run struct {
	Index uint64
	Seed  uint64 // sim.DeriveSeed(campaign seed, Index)
	Shard int
	Cell  Cell
	// Deadline is the supervision policy's per-run wall-clock budget, 0
	// when unsupervised. Rigs thread it into their coupling watchdog
	// config so a hung transport trips inside the run, before the
	// supervisor has to reap the whole attempt from outside.
	Deadline time.Duration

	agg      *agg
	reg      *obs.Registry
	cover    *obs.CoverRegistry // fresh per attempt when coverage is on
	coverage bool
	prof     *obs.RunProfile // fresh per attempt when profiling is on
	profile  bool
	phases   *obs.PhaseProfile // shared live phase accumulator, may be nil
	value    any
}

// RNG returns a fresh generator over the run's derived stream. Every call
// restarts the stream, so a RunFunc normally calls it once.
func (r *Run) RNG() *sim.RNG { return sim.NewRNG(r.Seed) }

// Observe streams one named observation into the campaign aggregate
// (count/sum/min/max per stat) and, when the campaign is instrumented,
// into the registry histogram "campaign.stat.<name>".
func (r *Run) Observe(stat string, v float64) {
	r.agg.observe(stat, v)
	if r.reg != nil {
		r.reg.Histogram("campaign.stat."+stat, histBounds...).Observe(v)
	}
}

// ObserveWall records a wall-clock-dependent measurement — retry counts,
// latencies, anything scheduling can perturb. It feeds the registry
// histogram for live telemetry but stays out of the campaign aggregate,
// which must remain a pure function of the spec so the digest file is
// byte-identical across shard counts and crash/resume boundaries.
func (r *Run) ObserveWall(stat string, v float64) {
	if r.reg != nil {
		r.reg.Histogram("campaign.stat."+stat, histBounds...).Observe(v)
	}
}

// Cover returns the run's functional-coverage registry: a fresh registry
// per attempt when Spec.Coverage is on, nil otherwise (every obs cover
// handle is nil-safe, so rigs instrument unconditionally). The final
// attempt's snapshot rides the campaign aggregate through the same
// held-queue/quarantine machinery as the stats, so the digest's
// coverage section is byte-identical at any shard count and across
// kill/resume.
func (r *Run) Cover() *obs.CoverRegistry { return r.cover }

// Profile returns the run's simulation profile: a fresh obs.RunProfile per
// attempt when Spec.Profile is on, nil otherwise (every profile handle is
// nil-safe, so rigs instrument unconditionally). Its deterministic
// activity half rides the campaign aggregate through the same held-queue
// machinery as coverage, so the digest's profile section is byte-identical
// at any shard count; its wall-clock phase half accumulates into the
// campaign's shared live phase profile, which feeds telemetry only and
// never a digest.
func (r *Run) Profile() *obs.RunProfile { return r.prof }

// SetValue attaches a payload to the run's Result for Spec.OnResult
// collectors. Without a collector the payload is dropped when the run
// finishes, keeping campaign memory bounded.
func (r *Run) SetValue(v any) { r.value = v }

// Spec describes a campaign.
type Spec struct {
	// Name labels reports and replay lines.
	Name string
	// Seed is the campaign master seed every per-run seed derives from.
	Seed uint64
	// Runs is the total number of runs.
	Runs int
	// Shards is the worker count; 0 selects GOMAXPROCS. Run i is
	// statically assigned to shard i % Shards, so each shard's work list
	// is a pure function of (Runs, Shards) — the precondition for the
	// digest's shard-count independence.
	Shards int
	// FailFast cancels the remaining runs at the first failure. In-flight
	// runs are torn down through their contexts; runs not yet started are
	// reported as skipped.
	FailFast bool
	// DigestMax bounds the failure digest (default 16); failures beyond it
	// are counted but not retained.
	DigestMax int
	// Matrix is the experiment × fault-profile cell list.
	Matrix []Cell
	// Policy supervises each run: per-run deadline, classified bounded
	// retry, cell quarantine. The zero value disables supervision.
	Policy Policy
	// Checkpoint, when non-empty, is the durable checkpoint file: written
	// atomically every CheckpointEvery committed runs, on cancellation,
	// and at campaign end. Resume continues a campaign from it.
	Checkpoint string
	// CheckpointEvery is the commit cadence between checkpoint writes
	// (default 64).
	CheckpointEvery int
	// Coverage collects functional coverage: every run gets a fresh
	// obs.CoverRegistry (Run.Cover), the final attempt's snapshot merges
	// bin-wise into the campaign aggregate, and the digest gains a
	// deterministic coverage: section. The flag is part of the checkpoint
	// fingerprint — a resume must collect (or not collect) coverage
	// exactly as the checkpointed campaign did.
	Coverage bool
	// Profile collects the simulation profile: every run gets a fresh
	// obs.RunProfile (Run.Profile), the final attempt's deterministic
	// activity snapshot merges entry-wise into the campaign aggregate, and
	// the digest gains a deterministic profile section (activity counts
	// only — wall-clock phase times stay in live telemetry). Like Coverage
	// the flag is part of the checkpoint fingerprint.
	Profile bool
	// Obs, when non-nil, receives campaign metrics — per-shard labelled
	// counters campaign.runs.shardK / campaign.failures.shardK /
	// campaign.retries.shardK / campaign.gaveup.shardK, stat histograms,
	// end-of-campaign stat gauges, checkpoint write counters — and a
	// campaign-level trace with one track per worker. Campaign trace
	// timestamps are wall time (µs), not simulated time: each run restarts
	// its own simulation clocks, so wall time is the only axis shared by
	// all runs.
	Obs *obs.Run
	// OnResult, when non-nil, is invoked serially (in completion order,
	// not index order) with every finished run's Result, including its
	// SetValue payload. Quarantine-skipped runs are delivered with
	// Err == ErrQuarantined. Callers needing index order can slot results
	// by Result.Index.
	OnResult func(Result)
}

// ErrSpec classifies campaign parameter errors, so the CLI can map them to
// usage-and-exit-2 like any other flag validation failure.
var ErrSpec = errors.New("campaign: invalid spec")

// ErrQuarantined marks the Result of a run skipped because its matrix
// cell was quarantined.
var ErrQuarantined = errors.New("campaign: cell quarantined")

func (s *Spec) validate() error {
	switch {
	case s.Runs < 1:
		return fmt.Errorf("%w: runs = %d, want >= 1", ErrSpec, s.Runs)
	case s.Shards < 0:
		return fmt.Errorf("%w: shards = %d, want >= 0", ErrSpec, s.Shards)
	case len(s.Matrix) == 0:
		return fmt.Errorf("%w: empty matrix", ErrSpec)
	case s.DigestMax < 0:
		return fmt.Errorf("%w: digest max = %d, want >= 0", ErrSpec, s.DigestMax)
	case s.Policy.RunTimeout < 0:
		return fmt.Errorf("%w: run timeout = %v, want >= 0", ErrSpec, s.Policy.RunTimeout)
	case s.Policy.Retries < 0:
		return fmt.Errorf("%w: retries = %d, want >= 0", ErrSpec, s.Policy.Retries)
	case s.Policy.RetryBase < 0, s.Policy.RetryCap < 0:
		return fmt.Errorf("%w: negative retry backoff", ErrSpec)
	case s.Policy.QuarantineAfter < 0:
		return fmt.Errorf("%w: quarantine after = %d, want >= 0", ErrSpec, s.Policy.QuarantineAfter)
	case s.CheckpointEvery < 0:
		return fmt.Errorf("%w: checkpoint every = %d, want >= 0", ErrSpec, s.CheckpointEvery)
	}
	return nil
}

func (s *Spec) shardCount() int {
	if s.Shards > 0 {
		return s.Shards
	}
	return runtime.GOMAXPROCS(0)
}

func (s *Spec) digestMax() int {
	if s.DigestMax > 0 {
		return s.DigestMax
	}
	return 16
}

func (s *Spec) checkpointEvery() int {
	if s.CheckpointEvery > 0 {
		return s.CheckpointEvery
	}
	return 64
}

// cellFor returns the matrix cell of run index i.
func (s *Spec) cellFor(i uint64) Cell { return s.Matrix[i%uint64(len(s.Matrix))] }

// Result is one finished run.
type Result struct {
	Index uint64
	Seed  uint64
	Cell  Cell
	Shard int
	Err   error
	Value any
	Wall  time.Duration
	// Attempts is how many times the run executed (1 without retries; 0
	// for a quarantine-skipped run).
	Attempts int
}

// Failure is one digest entry.
type Failure struct {
	Index uint64
	Seed  uint64
	Cell  string
	Err   error
	// Detail is the run's attached triage bundle (waterfall +
	// flight-recorder dump, see Detailed). It is printed by WriteReport
	// but deliberately kept out of Digest(), whose lines must stay
	// one-per-failure and byte-identical across shard counts.
	Detail string
	// label caches the rendered Label of a failure restored from a
	// checkpoint, whose live error value did not survive the crash.
	label string
}

// Detailer is implemented by errors carrying a multi-line triage detail
// (Detailed wraps any error with one). The campaign engine extracts it
// into Failure.Detail so reports show the failing run's flight-recorder
// dump and cell waterfall without a re-run.
type Detailer interface {
	FailureDetail() string
}

// detailedError attaches a triage detail to a run failure while leaving
// the wrapped error's identity (errors.Is/As, Error text) untouched.
type detailedError struct {
	err    error
	detail string
}

func (e *detailedError) Error() string         { return e.err.Error() }
func (e *detailedError) Unwrap() error         { return e.err }
func (e *detailedError) FailureDetail() string { return e.detail }

// Detailed wraps a run failure with its triage detail. A nil err or
// empty detail passes err through unchanged.
func Detailed(err error, detail string) error {
	if err == nil || detail == "" {
		return err
	}
	return &detailedError{err: err, detail: detail}
}

// Label renders the failure deterministically: typed coupling errors
// collapse to their class/op pair (their full text can carry
// timing-dependent detail), anything else prints its error text, which
// sources are required to keep deterministic.
func (f Failure) Label() string {
	if f.label != "" {
		return f.label
	}
	var ce *cosim.CouplingError
	if errors.As(f.Err, &ce) {
		return fmt.Sprintf("coupling/%s/%s", ce.Class, ce.Op)
	}
	if f.Err == nil {
		return "ok"
	}
	return f.Err.Error()
}

// heldAgg is a committed run's aggregate and digest entry waiting for the
// run's final quarantine classification: with a board active, a run's
// stats only merge into the shard aggregate — and its failure only claims
// a bounded digest slot — once the board's frontier proves the run is not
// retroactively quarantined. The queue drains in push order — the shard's
// index order — so the float64 merge order and the digest retention both
// stay pure functions of the spec.
type heldAgg struct {
	cell  int
	ord   uint64
	index uint64
	agg   *agg     // nil when the run observed nothing
	fail  *Failure // nil when the run passed
}

// shardState accumulates one worker's output. The mutex orders the
// worker's commits against checkpoint snapshots; workers never touch each
// other's state.
type shardState struct {
	mu          sync.Mutex
	agg         *agg
	held        []heldAgg
	failures    []Failure // ascending by index, bounded by digestMax
	failTotal   int
	completed   int
	skipped     int
	quarantined int
	retried     int
	gaveUp      int
	// done is the shard's runs-completed watermark: the first done indices
	// of the shard's work list are committed (counted, checkpointed, never
	// re-run). Cancelled runs never commit, so the prefix stays contiguous
	// and a resume continues at index shard + done*shards.
	done int
}

// drainHeldLocked consumes the prefix of the held queue whose quarantine
// classification is final, merging surviving aggregates and retaining
// surviving failures up to digestMax. Callers hold st.mu.
func (st *shardState) drainHeldLocked(q *quarantine, digestMax int) {
	for len(st.held) > 0 {
		h := st.held[0]
		final, drop := q.finality(h.cell, h.ord, false)
		if !final {
			return
		}
		if !drop {
			if h.agg != nil {
				st.agg.merge(h.agg)
			}
			if h.fail != nil && len(st.failures) < digestMax {
				st.failures = append(st.failures, *h.fail)
			}
		}
		st.held = st.held[1:]
	}
}

// engine is one campaign execution: spec, effective shard count, per-shard
// states, the optional quarantine board, and the checkpoint plumbing.
type engine struct {
	spec   *Spec
	shards int
	states []*shardState
	board  *quarantine

	ckCh      chan struct{} // nil without a checkpoint path
	ckEvery   int
	committed atomic.Uint64
	ckMu      sync.Mutex
	ckErr     error
}

// Execute runs the campaign and blocks until every worker has drained or
// been cancelled. The returned Summary is complete even when ctx was
// cancelled mid-campaign; the error reports spec problems only.
func Execute(ctx context.Context, spec Spec) (*Summary, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return execute(ctx, spec, nil)
}

// Resume continues the campaign from Spec.Checkpoint: it validates the
// file's spec fingerprint, restores the per-shard watermarks, aggregates
// and failure lists, and executes only the runs past each watermark. The
// shard count is taken from the checkpoint (per-shard float sums only
// merge deterministically at a fixed shard count), so the final digest
// and aggregate report are byte-identical to an uninterrupted run. A
// missing checkpoint file degrades to a fresh Execute.
func Resume(ctx context.Context, spec Spec) (*Summary, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.Checkpoint == "" {
		return nil, fmt.Errorf("%w: resume requires a checkpoint path", ErrSpec)
	}
	ck, err := loadCheckpoint(spec.Checkpoint)
	if errors.Is(err, os.ErrNotExist) {
		return execute(ctx, spec, nil)
	}
	if err != nil {
		return nil, err
	}
	spec.Shards = ck.shards
	if got := specFingerprint(&spec, ck.shards); got != ck.fingerprint {
		return nil, fmt.Errorf("%w: %s belongs to a different campaign (file fingerprint %016x, this spec %016x)",
			ErrCheckpoint, spec.Checkpoint, ck.fingerprint, got)
	}
	return execute(ctx, spec, ck)
}

func execute(ctx context.Context, spec Spec, resume *checkpointState) (*Summary, error) {
	shards := spec.shardCount()
	if shards > spec.Runs {
		shards = spec.Runs
	}
	if resume != nil {
		shards = resume.shards
	}
	e := &engine{spec: &spec, shards: shards, ckEvery: spec.checkpointEvery()}
	e.states = make([]*shardState, shards)
	for s := range e.states {
		e.states[s] = &shardState{agg: newAgg()}
	}
	if spec.Policy.QuarantineAfter > 0 {
		e.board = newQuarantine(len(spec.Matrix), spec.Policy.QuarantineAfter)
	}
	if resume != nil {
		e.restore(resume)
	}
	epoch := time.Now()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Result collection is serialized through one channel so OnResult
	// never observes two runs at once.
	var results chan Result
	collectorDone := make(chan struct{})
	if spec.OnResult != nil {
		results = make(chan Result, shards)
		go func() {
			defer close(collectorDone)
			for res := range results {
				spec.OnResult(res)
			}
		}()
	} else {
		close(collectorDone)
	}

	var ckStop chan struct{}
	ckDone := make(chan struct{})
	if spec.Checkpoint != "" {
		e.ckCh = make(chan struct{}, 1)
		ckStop = make(chan struct{})
		go func() {
			defer close(ckDone)
			e.checkpointLoop(runCtx, ckStop)
		}()
	} else {
		close(ckDone)
	}

	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			e.runShard(runCtx, cancel, shard, results, epoch)
		}(s)
	}
	wg.Wait()
	if results != nil {
		close(results)
	}
	<-collectorDone
	if ckStop != nil {
		close(ckStop)
	}
	<-ckDone

	sum := e.summarize(epoch)
	if spec.Checkpoint != "" {
		// The final write covers every commit the summary covers, so
		// resuming a finished campaign reproduces the identical summary
		// without executing a run.
		e.writeCheckpoint()
	}
	e.ckMu.Lock()
	sum.CheckpointErr = e.ckErr
	e.ckMu.Unlock()
	publishSummary(spec.Obs.Reg(), sum)
	return sum, nil
}

// runShard executes the shard's statically assigned indices in ascending
// order, starting past the resume watermark.
func (e *engine) runShard(ctx context.Context, cancel context.CancelFunc,
	shard int, results chan<- Result, epoch time.Time) {

	spec := e.spec
	st := e.states[shard]
	reg := spec.Obs.Reg()
	tr := spec.Obs.Trace()
	track := obs.TrackWorker(shard)
	coverMirror := spec.Obs.CoverReg()
	profMirror := spec.Obs.Prof()
	runsC := reg.ShardCounter("campaign.runs", shard)
	failsC := reg.ShardCounter("campaign.failures", shard)
	retriesC := reg.ShardCounter("campaign.retries", shard)
	gaveupC := reg.ShardCounter("campaign.gaveup", shard)
	wallPS := func() int64 { return time.Since(epoch).Nanoseconds() * 1000 }
	cells := uint64(len(spec.Matrix))
	digestMax := spec.digestMax()

	first := uint64(shard) + uint64(st.done)*uint64(e.shards)
	for i := first; i < uint64(spec.Runs); i += uint64(e.shards) {
		if ctx.Err() != nil {
			st.mu.Lock()
			st.skipped++
			st.mu.Unlock()
			continue
		}
		cell := spec.cellFor(i)
		cellIdx := int(i % cells)
		ord := i / cells
		seed := sim.DeriveSeed(spec.Seed, i)
		if e.board.skip(cellIdx, ord) {
			st.mu.Lock()
			st.quarantined++
			st.done++
			st.mu.Unlock()
			e.afterCommit()
			if results != nil {
				results <- Result{Index: i, Seed: seed, Cell: cell, Shard: shard, Err: ErrQuarantined}
			}
			continue
		}
		proto := Run{Index: i, Seed: seed, Shard: shard, Cell: cell,
			coverage: spec.Coverage, profile: spec.Profile, phases: profMirror.PhaseProf()}
		tr.Begin(track, cell.Name(), wallPS())
		started := time.Now()
		out := spec.Policy.supervise(ctx, cell.Run, proto, reg, retriesC, gaveupC)
		wall := time.Since(started)
		tr.End(track, cell.Name(), wallPS())
		runsC.Inc()
		if out.agg != nil {
			// Live telemetry mirror: /coverage tracks closure and /profile
			// tracks hotspots while the campaign runs. Absorb order is
			// scheduling-dependent, which is fine here — the deterministic
			// artifacts are the aggregate's cover and activity, committed
			// under the held-queue discipline below.
			coverMirror.Absorb(out.agg.cover)
			profMirror.AbsorbActivity(out.agg.activity)
		}

		if out.err != nil && ctx.Err() != nil {
			// The run was torn down by cancellation; its error is an
			// artifact of the teardown, not a finding. It never commits,
			// so a resume re-executes it.
			st.mu.Lock()
			st.skipped++
			st.mu.Unlock()
		} else {
			cls := e.board.record(cellIdx, ord, i, out.gaveUp, out.err != nil)
			quarantined := cls == classQuarantined
			var fail *Failure
			st.mu.Lock()
			switch {
			case quarantined:
				st.quarantined++
			case out.err == nil:
				st.completed++
			default:
				failsC.Inc()
				st.failTotal++
				f := Failure{Index: i, Seed: seed, Cell: cell.Name(), Err: out.err}
				var det Detailer
				if errors.As(out.err, &det) {
					f.Detail = det.FailureDetail()
				}
				if e.board == nil {
					if len(st.failures) < digestMax {
						st.failures = append(st.failures, f)
					}
				} else {
					// Digest retention is decided when the board finalizes
					// the run, not now: a raced failure must not claim one
					// of the bounded slots it would never get serially.
					fail = &f
				}
			}
			if !quarantined {
				if e.board == nil {
					if out.agg != nil {
						st.agg.merge(out.agg)
					}
				} else if out.agg != nil || fail != nil {
					st.held = append(st.held, heldAgg{cell: cellIdx, ord: ord, index: i,
						agg: out.agg, fail: fail})
				}
			}
			st.retried += out.attempts - 1
			if out.gaveUp {
				st.gaveUp++
			}
			st.done++
			st.drainHeldLocked(e.board, digestMax)
			st.mu.Unlock()
			if out.err != nil && !quarantined {
				tr.Emit(track, "fail:"+cell.Name(), wallPS())
				if spec.FailFast {
					cancel()
				}
			}
			e.afterCommit()
		}
		if results != nil {
			results <- Result{Index: i, Seed: seed, Cell: cell, Shard: shard,
				Err: out.err, Value: out.value, Wall: wall, Attempts: out.attempts}
		}
	}
}

// afterCommit ticks the checkpoint cadence.
func (e *engine) afterCommit() {
	if e.ckCh == nil {
		return
	}
	if n := e.committed.Add(1); n%uint64(e.ckEvery) == 0 {
		select {
		case e.ckCh <- struct{}{}:
		default:
		}
	}
}

// checkpointLoop writes checkpoints on cadence signals and flushes once
// on cancellation (the SIGINT/SIGTERM path), then waits for the final
// write issued by execute after the workers drain.
func (e *engine) checkpointLoop(ctx context.Context, stop <-chan struct{}) {
	for {
		select {
		case <-e.ckCh:
			e.writeCheckpoint()
		case <-ctx.Done():
			e.writeCheckpoint()
			<-stop
			return
		case <-stop:
			return
		}
	}
}

// writeCheckpoint snapshots the engine and saves it atomically. Failures
// are retained for the summary instead of aborting the campaign: losing
// durability is an operational warning, not a verification result.
func (e *engine) writeCheckpoint() {
	ck := e.snapshotState()
	err := saveCheckpoint(e.spec.Checkpoint, ck)
	e.ckMu.Lock()
	e.ckErr = err
	e.ckMu.Unlock()
	if reg := e.spec.Obs.Reg(); reg != nil && err == nil {
		reg.Counter("campaign.checkpoint.writes").Inc()
		reg.Gauge("campaign.checkpoint.last_unix").Set(float64(time.Now().Unix()))
		var covered int
		for _, s := range ck.snaps {
			covered += s.done
		}
		reg.Gauge("campaign.checkpoint.runs_covered").Set(float64(covered))
	}
}

// snapshotState copies the committed state under the shard locks, then
// the board. Ordering matters: commits record to the board before they
// advance the watermark, so snapshotting states first guarantees every
// watermarked run is present in the board copy; the converse surplus
// (board outcomes past a watermark) is idempotently re-recorded on
// resume.
func (e *engine) snapshotState() *checkpointState {
	ck := &checkpointState{
		fingerprint: specFingerprint(e.spec, e.shards),
		seed:        e.spec.Seed,
		runs:        e.spec.Runs,
		shards:      e.shards,
		matrixLen:   len(e.spec.Matrix),
		hasBoard:    e.board != nil,
	}
	for _, st := range e.states {
		st.mu.Lock()
		snap := ckShard{
			done: st.done, completed: st.completed, failTotal: st.failTotal,
			quarantined: st.quarantined, retried: st.retried, gaveUp: st.gaveUp,
			stats: st.agg.summary(), cover: st.agg.cover, activity: st.agg.activity,
		}
		for _, f := range st.failures {
			snap.failures = append(snap.failures, ckFailure{index: f.Index, seed: f.Seed,
				cell: f.Cell, label: f.Label(), detail: f.Detail})
		}
		for _, h := range st.held {
			ch := ckHeld{index: h.index}
			if h.agg != nil {
				ch.stats = h.agg.summary()
				ch.cover = h.agg.cover
				ch.activity = h.agg.activity
			}
			if h.fail != nil {
				ch.fail = &ckFailure{index: h.fail.Index, seed: h.fail.Seed,
					cell: h.fail.Cell, label: h.fail.Label(), detail: h.fail.Detail}
			}
			snap.held = append(snap.held, ch)
		}
		st.mu.Unlock()
		ck.snaps = append(ck.snaps, snap)
	}
	if e.board != nil {
		e.board.mu.Lock()
		for i := range e.board.cells {
			c := &e.board.cells[i]
			cc := ckCell{decided: c.decided, consec: c.consec, chainFirst: c.chainFirst,
				quarantined: c.quarantined, e: c.e, firstFail: c.firstFail}
			for ord, p := range c.pending {
				cc.pending = append(cc.pending, ckPending{ord: ord, index: p.index,
					failed: p.failed, gaveUp: p.gaveUp})
			}
			ck.board = append(ck.board, cc)
		}
		e.board.mu.Unlock()
	}
	return ck
}

// restore loads a checkpoint into the engine before the workers start.
func (e *engine) restore(ck *checkpointState) {
	cells := uint64(len(e.spec.Matrix))
	var total uint64
	for s, snap := range ck.snaps {
		if s >= len(e.states) {
			break
		}
		st := e.states[s]
		st.done = snap.done
		st.completed = snap.completed
		st.failTotal = snap.failTotal
		st.quarantined = snap.quarantined
		st.retried = snap.retried
		st.gaveUp = snap.gaveUp
		st.agg = aggFromStats(snap.stats)
		st.agg.cover = snap.cover
		st.agg.activity = snap.activity
		for _, f := range snap.failures {
			st.failures = append(st.failures, Failure{Index: f.index, Seed: f.seed,
				Cell: f.cell, Detail: f.detail, label: f.label})
		}
		for _, h := range snap.held {
			ha := heldAgg{cell: int(h.index % cells), ord: h.index / cells, index: h.index}
			if len(h.stats) > 0 || len(h.cover) > 0 || !h.activity.Empty() {
				ha.agg = aggFromStats(h.stats)
				ha.agg.cover = h.cover
				ha.agg.activity = h.activity
			}
			if h.fail != nil {
				ha.fail = &Failure{Index: h.fail.index, Seed: h.fail.seed,
					Cell: h.fail.cell, Detail: h.fail.detail, label: h.fail.label}
			}
			st.held = append(st.held, ha)
		}
		total += uint64(snap.done)
	}
	if e.board != nil && ck.hasBoard {
		for i, cc := range ck.board {
			if i >= len(e.board.cells) {
				break
			}
			c := &e.board.cells[i]
			c.decided, c.consec, c.chainFirst = cc.decided, cc.consec, cc.chainFirst
			c.quarantined, c.e, c.firstFail = cc.quarantined, cc.e, cc.firstFail
			for _, p := range cc.pending {
				c.pending[p.ord] = pendingOutcome{index: p.index, failed: p.failed, gaveUp: p.gaveUp}
			}
		}
	}
	e.committed.Store(total)
}

// summarize normalizes the quarantine board's raced runs, drains the held
// aggregates, and merges the shard states in shard order.
func (e *engine) summarize(epoch time.Time) *Summary {
	spec := e.spec
	sum := &Summary{
		Name:     spec.Name,
		Seed:     spec.Seed,
		Runs:     spec.Runs,
		Shards:   e.shards,
		FailFast: spec.FailFast,
		Wall:     time.Since(epoch),
	}
	e.normalizeQuarantine(sum)
	merged := newAgg()
	var lists [][]Failure
	for _, st := range e.states {
		st.mu.Lock()
		st.drainHeldLocked(e.board, spec.digestMax())
		merged.merge(st.agg)
		// Held leftovers exist only when cancellation left frontier gaps;
		// their stats and failures count toward this (inherently partial)
		// summary but stay queued so the checkpoint resumes them exactly.
		fl := st.failures
		for _, h := range st.held {
			if _, drop := e.board.finality(h.cell, h.ord, true); !drop {
				if h.agg != nil {
					merged.merge(h.agg)
				}
				if h.fail != nil {
					fl = append(fl[:len(fl):len(fl)], *h.fail)
				}
			}
		}
		sum.Completed += st.completed
		sum.Failed += st.failTotal
		sum.Skipped += st.skipped
		sum.Quarantined += st.quarantined
		sum.Retried += st.retried
		sum.GaveUp += st.gaveUp
		lists = append(lists, fl)
		st.mu.Unlock()
	}
	sum.Stats = merged.summary()
	sum.Coverage = merged.cover
	sum.Activity = merged.activity
	sum.Failures = mergeFailures(lists, spec.digestMax())
	return sum
}

// normalizeQuarantine reclassifies runs that raced ahead of a quarantine
// declaration: they executed and committed as ordinary outcomes, but a
// serial execution would have skipped them, so the summary must count
// them as quarantined and drop their digest entries. The set of such runs
// — cell ordinals >= e — is a pure function of the deterministic per-run
// outcomes, so the normalized counts and digest are shard-count and
// crash/resume invariant.
func (e *engine) normalizeQuarantine(sum *Summary) {
	if e.board == nil {
		return
	}
	L := uint64(len(e.spec.Matrix))
	type raced struct {
		index  uint64
		failed bool
	}
	var relabel []raced
	e.board.mu.Lock()
	for ci := range e.board.cells {
		c := &e.board.cells[ci]
		if !c.quarantined {
			continue
		}
		for _, p := range c.pending {
			relabel = append(relabel, raced{index: p.index, failed: p.failed})
		}
		c.pending = make(map[uint64]pendingOutcome)
		sum.Quarantines = append(sum.Quarantines, QuarantinedCell{
			Cell:      e.spec.Matrix[ci].Name(),
			FirstFail: c.firstFail,
			FromRun:   c.e*L + uint64(ci),
		})
	}
	e.board.mu.Unlock()
	for _, r := range relabel {
		st := e.states[int(r.index%uint64(e.shards))]
		st.mu.Lock()
		if r.failed {
			st.failTotal--
		} else {
			st.completed--
		}
		st.quarantined++
		st.mu.Unlock()
	}
}

// runOne executes the run with panic containment: a panicking rig fails
// its own run instead of killing the campaign's worker pool, and the
// recovered stack rides the failure as its triage detail.
func runOne(ctx context.Context, fn RunFunc, r *Run) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = Detailed(fmt.Errorf("campaign: run panicked: %v", p),
				"panic stack:\n"+string(debug.Stack()))
		}
	}()
	return fn(ctx, r)
}

// mergeFailures k-way merges per-shard ascending failure lists into one
// index-ordered digest, truncated to max entries.
func mergeFailures(lists [][]Failure, max int) []Failure {
	var out []Failure
	heads := make([]int, len(lists))
	for len(out) < max {
		best := -1
		for s, h := range heads {
			if h >= len(lists[s]) {
				continue
			}
			if best < 0 || lists[s][h].Index < lists[best][heads[best]].Index {
				best = s
			}
		}
		if best < 0 {
			break
		}
		out = append(out, lists[best][heads[best]])
		heads[best]++
	}
	return out
}

// Replay executes exactly the single run a digest line names, serially on
// the calling goroutine, and returns its result. The run reconstructs the
// identical (seed, cell) pair the campaign used and executes under the
// same supervision policy — same per-run deadline, same retry budget —
// so a digest line from a timed-out run replays to the same typed
// timeout.
func Replay(ctx context.Context, spec Spec, index uint64) (Result, error) {
	if err := spec.validate(); err != nil {
		return Result{}, err
	}
	if index >= uint64(spec.Runs) {
		return Result{}, fmt.Errorf("%w: replay index %d outside 0..%d", ErrSpec, index, spec.Runs-1)
	}
	cell := spec.cellFor(index)
	reg := spec.Obs.Reg()
	proto := Run{Index: index, Seed: sim.DeriveSeed(spec.Seed, index), Cell: cell,
		coverage: spec.Coverage, profile: spec.Profile, phases: spec.Obs.Prof().PhaseProf()}
	start := time.Now()
	out := spec.Policy.supervise(ctx, cell.Run, proto, reg,
		reg.ShardCounter("campaign.retries", 0), reg.ShardCounter("campaign.gaveup", 0))
	return Result{Index: index, Seed: proto.Seed, Cell: cell, Err: out.err,
		Value: out.value, Wall: time.Since(start), Attempts: out.attempts}, nil
}

// OnCancel arranges teardown for an in-flight run: stop is invoked once if
// ctx is cancelled before the returned release function is called. Sources
// bracket a blocking rig run with it so fail-fast cancellation (or the
// supervision deadline, which cancels the run's context) closes the rig's
// coupling transport, turning the blocked run into a typed coupling error
// instead of letting it outlive the campaign. release blocks until the
// watcher goroutine has exited, so no goroutine leaks past the run.
func OnCancel(ctx context.Context, stop func()) (release func()) {
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-ctx.Done():
			stop()
		case <-done:
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}
