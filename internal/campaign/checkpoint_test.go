package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// interruptAfter cancels ctx once n results have been collected,
// simulating an operator killing the campaign mid-flight.
func interruptAfter(n int64, cancel context.CancelFunc) func(Result) {
	var seen atomic.Int64
	return func(Result) {
		if seen.Add(1) == n {
			cancel()
		}
	}
}

func assertSameSummary(t *testing.T, got, want *Summary, label string) {
	t.Helper()
	if got.Digest() != want.Digest() {
		t.Errorf("%s: digest differs:\n-- got --\n%s-- want --\n%s", label, got.Digest(), want.Digest())
	}
	if got.Completed != want.Completed || got.Failed != want.Failed ||
		got.Quarantined != want.Quarantined {
		t.Errorf("%s: completed/failed/quarantined = %d/%d/%d, want %d/%d/%d", label,
			got.Completed, got.Failed, got.Quarantined,
			want.Completed, want.Failed, want.Quarantined)
	}
	if len(got.Stats) != len(want.Stats) {
		t.Fatalf("%s: stat count %d, want %d", label, len(got.Stats), len(want.Stats))
	}
	for i, w := range want.Stats {
		if s := got.Stats[i]; s != w {
			t.Errorf("%s: stat %q: got %+v, want %+v", label, w.Name, s, w)
		}
	}
}

// TestCheckpointResumeDeterministic is the tentpole durability property:
// interrupt a checkpointed campaign mid-flight, resume it from the file,
// and the final digest and aggregate report are byte-identical to an
// uninterrupted run — at more than one shard count.
func TestCheckpointResumeDeterministic(t *testing.T) {
	for _, shards := range []int{2, 5} {
		base := Spec{
			Name:   "ckpt-prop",
			Seed:   42,
			Runs:   200,
			Shards: shards,
			Matrix: syntheticMatrix(),
		}
		ref, err := Execute(context.Background(), base)
		if err != nil {
			t.Fatalf("shards=%d: reference Execute: %v", shards, err)
		}
		if ref.Failed == 0 {
			t.Fatal("synthetic matrix produced no failures; test is vacuous")
		}

		ck := filepath.Join(t.TempDir(), "campaign.ckpt")
		ctx, cancel := context.WithCancel(context.Background())
		interrupted := base
		interrupted.Checkpoint = ck
		interrupted.CheckpointEvery = 8
		interrupted.OnResult = interruptAfter(60, cancel)
		partial, err := Execute(ctx, interrupted)
		cancel()
		if err != nil {
			t.Fatalf("shards=%d: interrupted Execute: %v", shards, err)
		}
		if partial.Skipped == 0 {
			t.Fatalf("shards=%d: interruption skipped nothing; property is vacuous", shards)
		}
		if _, err := os.Stat(ck); err != nil {
			t.Fatalf("shards=%d: no checkpoint written: %v", shards, err)
		}

		resumed := base
		resumed.Checkpoint = ck
		res, err := Resume(context.Background(), resumed)
		if err != nil {
			t.Fatalf("shards=%d: Resume: %v", shards, err)
		}
		if res.Skipped != 0 {
			t.Errorf("shards=%d: resumed run skipped %d runs", shards, res.Skipped)
		}
		assertSameSummary(t, res, ref, fmt.Sprintf("shards=%d", shards))
	}
}

// TestResumeOfCompleteCampaign checks the final checkpoint covers the full
// campaign: resuming it reproduces the identical summary while executing
// zero runs.
func TestResumeOfCompleteCampaign(t *testing.T) {
	var execs atomic.Int64
	matrix := syntheticMatrix()
	for i := range matrix {
		inner := matrix[i].Run
		matrix[i].Run = func(ctx context.Context, r *Run) error {
			execs.Add(1)
			return inner(ctx, r)
		}
	}
	spec := Spec{
		Name:       "ckpt-complete",
		Seed:       7,
		Runs:       64,
		Shards:     3,
		Matrix:     matrix,
		Checkpoint: filepath.Join(t.TempDir(), "campaign.ckpt"),
	}
	ref, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	ran := execs.Load()
	if ran < int64(spec.Runs) {
		t.Fatalf("first pass executed %d of %d runs", ran, spec.Runs)
	}

	res, err := Resume(context.Background(), spec)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if got := execs.Load(); got != ran {
		t.Errorf("resume of a complete campaign executed %d extra runs", got-ran)
	}
	assertSameSummary(t, res, ref, "resume-of-complete")
}

// TestResumeMissingFileRunsFresh: a missing checkpoint degrades to a
// fresh full execution rather than an error.
func TestResumeMissingFileRunsFresh(t *testing.T) {
	spec := Spec{
		Name:       "ckpt-missing",
		Seed:       9,
		Runs:       40,
		Shards:     2,
		Matrix:     syntheticMatrix(),
		Checkpoint: filepath.Join(t.TempDir(), "never-written.ckpt"),
	}
	ref, err := Execute(context.Background(), Spec{
		Name: spec.Name, Seed: spec.Seed, Runs: spec.Runs,
		Shards: spec.Shards, Matrix: syntheticMatrix(),
	})
	if err != nil {
		t.Fatalf("reference Execute: %v", err)
	}
	res, err := Resume(context.Background(), spec)
	if err != nil {
		t.Fatalf("Resume with missing file: %v", err)
	}
	assertSameSummary(t, res, ref, "missing-file")
}

// TestResumeFingerprintMismatch: a checkpoint from a different campaign
// (here: different seed) must be rejected, not silently blended.
func TestResumeFingerprintMismatch(t *testing.T) {
	spec := Spec{
		Name:       "ckpt-fp",
		Seed:       11,
		Runs:       32,
		Shards:     2,
		Matrix:     syntheticMatrix(),
		Checkpoint: filepath.Join(t.TempDir(), "campaign.ckpt"),
	}
	if _, err := Execute(context.Background(), spec); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	other := spec
	other.Seed++
	if _, err := Resume(context.Background(), other); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("Resume with mismatched seed: err = %v, want ErrCheckpoint", err)
	}
}

// TestResumeRejectsCorruptFile: bit flips and truncation both surface as
// ErrCheckpoint (CRC or bounds check), never a panic or a silent restart.
func TestResumeRejectsCorruptFile(t *testing.T) {
	spec := Spec{
		Name:       "ckpt-corrupt",
		Seed:       13,
		Runs:       32,
		Shards:     2,
		Matrix:     syntheticMatrix(),
		Checkpoint: filepath.Join(t.TempDir(), "campaign.ckpt"),
	}
	if _, err := Execute(context.Background(), spec); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	raw, err := os.ReadFile(spec.Checkpoint)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-1] ^= 0xff
	if err := os.WriteFile(spec.Checkpoint, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(context.Background(), spec); !errors.Is(err, ErrCheckpoint) {
		t.Errorf("Resume with flipped byte: err = %v, want ErrCheckpoint", err)
	}

	if err := os.WriteFile(spec.Checkpoint, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(context.Background(), spec); !errors.Is(err, ErrCheckpoint) {
		t.Errorf("Resume with truncated file: err = %v, want ErrCheckpoint", err)
	}
}

// TestCheckpointRoundTrip exercises the codec directly, including the
// held-entry shapes the engine produces under quarantine: stats with no
// failure, a failure with no stats, and both.
func TestCheckpointRoundTrip(t *testing.T) {
	fail := ckFailure{index: 5, seed: 99, cell: "synth/noise",
		label: "coupling/timeout/run", detail: "deadline"}
	ck := &checkpointState{
		fingerprint: 0xdeadbeefcafe,
		seed:        21, runs: 100, shards: 2, matrixLen: 2, hasBoard: true,
		snaps: []ckShard{
			{
				done: 7, completed: 5, failTotal: 2, quarantined: 0, retried: 3, gaveUp: 1,
				stats:    []Stat{{Name: "draw", Count: 5, Sum: 12.5, Min: 0.5, Max: 9}},
				failures: []ckFailure{fail},
				held: []ckHeld{
					{index: 10, stats: []Stat{{Name: "draw", Count: 1, Sum: 2, Min: 2, Max: 2}}},
					{index: 12, fail: &fail},
					{index: 14, fail: &fail,
						stats: []Stat{{Name: "x", Count: 2, Sum: 3, Min: 1, Max: 2}}},
				},
			},
			{done: 6, completed: 6},
		},
		board: []ckCell{
			{decided: 4, consec: 2, chainFirst: 2, quarantined: false,
				pending: []ckPending{{ord: 6, index: 12, failed: true, gaveUp: true}}},
			{decided: 9, consec: 0, quarantined: true, e: 6, firstFail: 3},
		},
	}
	got, err := decodeCheckpoint(encodeCheckpoint(ck))
	if err != nil {
		t.Fatalf("decode(encode): %v", err)
	}
	if got.fingerprint != ck.fingerprint || got.seed != ck.seed ||
		got.runs != ck.runs || got.shards != ck.shards ||
		got.matrixLen != ck.matrixLen || got.hasBoard != ck.hasBoard {
		t.Errorf("header: got %+v, want %+v", got, ck)
	}
	if len(got.snaps) != len(ck.snaps) {
		t.Fatalf("snaps: %d, want %d", len(got.snaps), len(ck.snaps))
	}
	s, w := got.snaps[0], ck.snaps[0]
	if s.done != w.done || s.completed != w.completed || s.failTotal != w.failTotal ||
		s.retried != w.retried || s.gaveUp != w.gaveUp {
		t.Errorf("shard 0 counters: got %+v, want %+v", s, w)
	}
	if len(s.failures) != 1 || s.failures[0] != fail {
		t.Errorf("shard 0 failures: got %+v", s.failures)
	}
	if len(s.held) != 3 {
		t.Fatalf("shard 0 held: %d entries, want 3", len(s.held))
	}
	if s.held[0].fail != nil || len(s.held[0].stats) != 1 {
		t.Errorf("held[0]: got %+v", s.held[0])
	}
	if s.held[1].fail == nil || *s.held[1].fail != fail || len(s.held[1].stats) != 0 {
		t.Errorf("held[1]: got %+v", s.held[1])
	}
	if s.held[2].fail == nil || len(s.held[2].stats) != 1 {
		t.Errorf("held[2]: got %+v", s.held[2])
	}
	if len(got.board) != 2 || !got.board[1].quarantined || got.board[1].e != 6 ||
		got.board[1].firstFail != 3 || len(got.board[0].pending) != 1 {
		t.Errorf("board: got %+v", got.board)
	}
}
