package campaign

import (
	"fmt"
	"io"
	"strings"
	"time"

	"castanet/internal/obs"
)

// QuarantinedCell is one digest-header entry: a matrix cell the campaign
// stopped scheduling because runs in QuarantineAfter consecutive cell
// ordinals exhausted their retry budgets.
type QuarantinedCell struct {
	Cell      string
	FirstFail uint64 // run index of the give-up that opened the fatal chain
	FromRun   uint64 // first run index the quarantine skips
}

// Summary is the end-of-campaign report.
type Summary struct {
	Name     string
	Seed     uint64
	Runs     int
	Shards   int
	FailFast bool

	Completed   int
	Failed      int // total failures, not truncated to the digest
	Skipped     int // runs cancelled before or during teardown
	Quarantined int // runs skipped (or reclassified) by cell quarantine
	Retried     int // extra attempts spent on transient infra failures
	GaveUp      int // runs whose final failure was still transient
	Wall        time.Duration

	Stats    []Stat    // sorted by name
	Failures []Failure // first DigestMax failures, ascending by run index
	// Coverage is the campaign's merged functional-coverage snapshot
	// (empty unless Spec.Coverage): groups and points sorted by name,
	// bins in definition order, hit counts summed bin-wise over every
	// committed run — a pure function of the spec, independent of shard
	// count and crash/resume boundaries.
	Coverage []obs.CoverGroupSnap
	// Activity is the campaign's merged simulation activity profile (empty
	// unless Spec.Profile): per-signal event counts and per-process run
	// counts summed entry-wise over every committed run. Integer-derived
	// like Coverage, so the digest's profile section is byte-identical at
	// any shard count and across kill/resume. Wall-clock phase times are
	// deliberately absent — they live in telemetry only.
	Activity    obs.ActivitySnap
	Quarantines []QuarantinedCell
	// CheckpointErr is the last checkpoint write failure, nil when
	// durability worked (or was not requested). It is an operational
	// warning and deliberately does not affect Clean.
	CheckpointErr error
}

// Clean reports whether every run completed verified.
func (s *Summary) Clean() bool {
	return s.Failed == 0 && s.Skipped == 0 && s.Quarantined == 0
}

// Digest renders the canonical failure digest: quarantine header lines,
// then one line per retained failure, ascending by run index. Everything
// in it — indices, derived seeds, cell names, failure labels — is a pure
// function of the campaign spec, so the digest is byte-identical across
// shard counts and across crash/resume boundaries; wall-clock figures
// deliberately never appear.
func (s *Summary) Digest() string {
	var b strings.Builder
	for _, q := range s.Quarantines {
		fmt.Fprintf(&b, "quarantined cell=%s first-fail=%06d from-run=%06d\n",
			q.Cell, q.FirstFail, q.FromRun)
	}
	for _, f := range s.Failures {
		fmt.Fprintf(&b, "run=%06d seed=0x%016x cell=%s fail=%s\n",
			f.Index, f.Seed, f.Cell, f.Label())
	}
	return b.String()
}

// WriteDigest writes the deterministic campaign digest file: identity,
// outcome counts, aggregate stats and the failure digest — and nothing
// wall-clock or scheduling dependent, so two executions of the same spec
// (including one interrupted and resumed) produce byte-identical files.
func (s *Summary) WriteDigest(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "campaign %s seed=%d runs=%d shards=%d\n",
		s.Name, s.Seed, s.Runs, s.Shards); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "completed=%d failed=%d quarantined=%d\n",
		s.Completed, s.Failed, s.Quarantined); err != nil {
		return err
	}
	for _, st := range s.Stats {
		if _, err := fmt.Fprintf(w, "stat %s n=%d sum=%g min=%g max=%g\n",
			st.Name, st.Count, st.Sum, st.Min, st.Max); err != nil {
			return err
		}
	}
	if err := s.writeCoverageSection(w); err != nil {
		return err
	}
	if err := s.writeProfileSection(w); err != nil {
		return err
	}
	_, err := io.WriteString(w, s.Digest())
	return err
}

// writeProfileSection renders the digest's activity profile: the "profile "
// lines of obs.WriteActivityText, truncated to the top 10 hotspots. Only
// deterministic integer-derived activity appears here; the wall-clock phase
// breakdown stays out of the digest by construction.
func (s *Summary) writeProfileSection(w io.Writer) error {
	if s.Activity.Empty() {
		return nil
	}
	return obs.WriteActivityText(w, s.Activity, 10)
}

// writeCoverageSection renders the digest's coverage: section — one
// header, one group line with the hit-bin percentage, and one point line
// listing every bin's hit count. All figures derive from integer bin sums
// in a fixed sort order, so the section is byte-identical at any shard
// count and across kill/resume (the package's property tests enforce it).
func (s *Summary) writeCoverageSection(w io.Writer) error {
	if len(s.Coverage) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "coverage: groups=%d\n", len(s.Coverage)); err != nil {
		return err
	}
	for _, g := range s.Coverage {
		hit, total := g.Covered()
		if _, err := fmt.Fprintf(w, "cover group=%s hit=%d total=%d pct=%.1f\n",
			g.Name, hit, total, 100*g.Ratio()); err != nil {
			return err
		}
		for _, p := range g.Points {
			if _, err := fmt.Fprintf(w, "cover point=%s.%s", g.Name, p.Name); err != nil {
				return err
			}
			for _, b := range p.Bins {
				if _, err := fmt.Fprintf(w, " %s=%d", b.Label, b.Hits); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReplayArgs returns the castanet argument string that reproduces failure
// f in isolation.
func (s *Summary) ReplayArgs(f Failure) string {
	return fmt.Sprintf("-campaign %s -runs %d -seed %d -replay %d",
		s.Name, s.Runs, s.Seed, f.Index)
}

// WriteReport writes the operator summary: headline, outcome counts,
// aggregated stats, and the failure digest with one replay line per entry.
func (s *Summary) WriteReport(w io.Writer) error {
	rate := 0.0
	if secs := s.Wall.Seconds(); secs > 0 {
		rate = float64(s.Completed+s.Failed) / secs
	}
	if _, err := fmt.Fprintf(w, "campaign %q: %d runs on %d shards in %v (%.0f runs/s)\n",
		s.Name, s.Runs, s.Shards, s.Wall.Round(time.Millisecond), rate); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  completed=%d failed=%d skipped=%d quarantined=%d retried=%d gaveup=%d failfast=%v seed=%d\n",
		s.Completed, s.Failed, s.Skipped, s.Quarantined, s.Retried, s.GaveUp, s.FailFast, s.Seed); err != nil {
		return err
	}
	for _, q := range s.Quarantines {
		if _, err := fmt.Fprintf(w, "  quarantined cell=%s first-fail=%06d from-run=%06d\n",
			q.Cell, q.FirstFail, q.FromRun); err != nil {
			return err
		}
	}
	if s.CheckpointErr != nil {
		if _, err := fmt.Fprintf(w, "  warning: checkpoint write failed: %v\n", s.CheckpointErr); err != nil {
			return err
		}
	}
	for _, st := range s.Stats {
		if _, err := fmt.Fprintf(w, "  stat %-18s n=%-7d mean=%-12.6g min=%-12.6g max=%.6g\n",
			st.Name, st.Count, st.Mean(), st.Min, st.Max); err != nil {
			return err
		}
	}
	for _, g := range s.Coverage {
		hit, total := g.Covered()
		if _, err := fmt.Fprintf(w, "  cover %-24s %d/%d bins (%.1f%%)\n",
			g.Name, hit, total, 100*g.Ratio()); err != nil {
			return err
		}
	}
	if !s.Activity.Empty() {
		events, twoState, runs, deltaRuns := s.Activity.Totals()
		purity := 0.0
		if events > 0 {
			purity = 100 * float64(twoState) / float64(events)
		}
		if _, err := fmt.Fprintf(w, "  profile signals=%d events=%d purity=%.1f%% processes=%d runs=%d delta_runs=%d\n",
			len(s.Activity.Signals), events, purity, len(s.Activity.Processes), runs, deltaRuns); err != nil {
			return err
		}
	}
	if s.Failed > 0 {
		if _, err := fmt.Fprintf(w, "failure digest (first %d of %d):\n", len(s.Failures), s.Failed); err != nil {
			return err
		}
		for _, f := range s.Failures {
			if _, err := fmt.Fprintf(w, "  run=%06d seed=0x%016x cell=%s fail=%s\n",
				f.Index, f.Seed, f.Cell, f.Label()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "    replay: castanet %s\n", s.ReplayArgs(f)); err != nil {
				return err
			}
			// The attached triage bundle (cell waterfall + flight-recorder
			// dump), indented under its digest entry.
			if f.Detail != "" {
				for _, line := range strings.Split(strings.TrimRight(f.Detail, "\n"), "\n") {
					if _, err := fmt.Fprintf(w, "    | %s\n", line); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
