package campaign

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Summary is the end-of-campaign report.
type Summary struct {
	Name     string
	Seed     uint64
	Runs     int
	Shards   int
	FailFast bool

	Completed int
	Failed    int // total failures, not truncated to the digest
	Skipped   int // runs cancelled before or during teardown
	Wall      time.Duration

	Stats    []Stat    // sorted by name
	Failures []Failure // first DigestMax failures, ascending by run index
}

// Clean reports whether every run completed verified.
func (s *Summary) Clean() bool { return s.Failed == 0 && s.Skipped == 0 }

// Digest renders the canonical failure digest: one line per retained
// failure, ascending by run index. Everything in it — indices, derived
// seeds, cell names, failure labels — is a pure function of the campaign
// spec, so the digest is byte-identical across shard counts; wall-clock
// figures deliberately never appear.
func (s *Summary) Digest() string {
	var b strings.Builder
	for _, f := range s.Failures {
		fmt.Fprintf(&b, "run=%06d seed=0x%016x cell=%s fail=%s\n",
			f.Index, f.Seed, f.Cell, f.Label())
	}
	return b.String()
}

// ReplayArgs returns the castanet argument string that reproduces failure
// f in isolation.
func (s *Summary) ReplayArgs(f Failure) string {
	return fmt.Sprintf("-campaign %s -runs %d -seed %d -replay %d",
		s.Name, s.Runs, s.Seed, f.Index)
}

// WriteReport writes the operator summary: headline, outcome counts,
// aggregated stats, and the failure digest with one replay line per entry.
func (s *Summary) WriteReport(w io.Writer) error {
	rate := 0.0
	if secs := s.Wall.Seconds(); secs > 0 {
		rate = float64(s.Completed+s.Failed) / secs
	}
	if _, err := fmt.Fprintf(w, "campaign %q: %d runs on %d shards in %v (%.0f runs/s)\n",
		s.Name, s.Runs, s.Shards, s.Wall.Round(time.Millisecond), rate); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  completed=%d failed=%d skipped=%d failfast=%v seed=%d\n",
		s.Completed, s.Failed, s.Skipped, s.FailFast, s.Seed); err != nil {
		return err
	}
	for _, st := range s.Stats {
		if _, err := fmt.Fprintf(w, "  stat %-18s n=%-7d mean=%-12.6g min=%-12.6g max=%.6g\n",
			st.Name, st.Count, st.Mean(), st.Min, st.Max); err != nil {
			return err
		}
	}
	if s.Failed > 0 {
		if _, err := fmt.Fprintf(w, "failure digest (first %d of %d):\n", len(s.Failures), s.Failed); err != nil {
			return err
		}
		for _, f := range s.Failures {
			if _, err := fmt.Fprintf(w, "  run=%06d seed=0x%016x cell=%s fail=%s\n",
				f.Index, f.Seed, f.Cell, f.Label()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "    replay: castanet %s\n", s.ReplayArgs(f)); err != nil {
				return err
			}
			// The attached triage bundle (cell waterfall + flight-recorder
			// dump), indented under its digest entry.
			if f.Detail != "" {
				for _, line := range strings.Split(strings.TrimRight(f.Detail, "\n"), "\n") {
					if _, err := fmt.Fprintf(w, "    | %s\n", line); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
