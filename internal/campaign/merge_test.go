package campaign

import "testing"

func fs(indices ...uint64) []Failure {
	out := make([]Failure, 0, len(indices))
	for _, i := range indices {
		out = append(out, Failure{Index: i})
	}
	return out
}

func indicesOf(fl []Failure) []uint64 {
	out := make([]uint64, 0, len(fl))
	for _, f := range fl {
		out = append(out, f.Index)
	}
	return out
}

func assertIndices(t *testing.T, got []Failure, want ...uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("merged %v, want %v", indicesOf(got), want)
	}
	for i, f := range got {
		if f.Index != want[i] {
			t.Fatalf("merged %v, want %v", indicesOf(got), want)
		}
	}
}

func TestMergeFailuresInterleaves(t *testing.T) {
	got := mergeFailures([][]Failure{fs(0, 4, 8), fs(1, 5), fs(2, 3, 9)}, 16)
	assertIndices(t, got, 0, 1, 2, 3, 4, 5, 8, 9)
}

// TestMergeFailuresTruncatesAtMax: truncation keeps exactly the first max
// by global index order, not per-shard prefixes.
func TestMergeFailuresTruncatesAtMax(t *testing.T) {
	got := mergeFailures([][]Failure{fs(0, 2, 4, 6), fs(1, 3, 5, 7)}, 5)
	assertIndices(t, got, 0, 1, 2, 3, 4)

	// Exactly at the bound: nothing dropped.
	got = mergeFailures([][]Failure{fs(0, 2), fs(1, 3)}, 4)
	assertIndices(t, got, 0, 1, 2, 3)

	if got := mergeFailures([][]Failure{fs(9)}, 0); len(got) != 0 {
		t.Fatalf("max=0 retained %v", indicesOf(got))
	}
}

func TestMergeFailuresEmptyLists(t *testing.T) {
	if got := mergeFailures(nil, 8); len(got) != 0 {
		t.Fatalf("no lists: got %v", indicesOf(got))
	}
	if got := mergeFailures([][]Failure{nil, {}, nil}, 8); len(got) != 0 {
		t.Fatalf("all-empty lists: got %v", indicesOf(got))
	}
	got := mergeFailures([][]Failure{nil, fs(3, 6), nil}, 8)
	assertIndices(t, got, 3, 6)
}

func TestMergeFailuresSingleShardPassthrough(t *testing.T) {
	got := mergeFailures([][]Failure{fs(1, 4, 6, 9)}, 16)
	assertIndices(t, got, 1, 4, 6, 9)
}
