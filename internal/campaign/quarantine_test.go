package campaign

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"castanet/internal/cosim"
)

// fastRetries keeps supervised tests quick: real retry classification,
// negligible backoff.
func fastRetries(quarantineAfter int) Policy {
	return Policy{
		Retries:         1,
		RetryBase:       time.Microsecond,
		RetryCap:        time.Microsecond,
		QuarantineAfter: quarantineAfter,
	}
}

// deadInfraMatrix pairs a healthy cell with one whose infrastructure is
// permanently down: every run fails with a retryable coupling timeout and
// exhausts its retry budget.
func deadInfraMatrix() []Cell {
	good := func(ctx context.Context, r *Run) error {
		r.Observe("draw", float64(r.RNG().Uint64()%1000))
		return nil
	}
	bad := func(ctx context.Context, r *Run) error {
		return &cosim.CouplingError{Class: cosim.ClassTimeout, Op: "connect",
			Err: errors.New("rig never came up")}
	}
	return []Cell{
		{Experiment: "synth", Run: good},
		{Experiment: "synth", Fault: "dead", Run: bad},
	}
}

// TestQuarantineDeterministicAcrossShards: with QuarantineAfter=3, the
// dead cell burns exactly 3 counted failures (its first three ordinals),
// then every later ordinal is quarantined — with identical counts and a
// byte-identical digest at any shard count, even though high shard counts
// race many dead-cell runs past the declaration point.
func TestQuarantineDeterministicAcrossShards(t *testing.T) {
	run := func(shards int) *Summary {
		sum, err := Execute(context.Background(), Spec{
			Name:   "quarantine",
			Seed:   5,
			Runs:   40,
			Shards: shards,
			Matrix: deadInfraMatrix(),
			Policy: fastRetries(3),
		})
		if err != nil {
			t.Fatalf("Execute(shards=%d): %v", shards, err)
		}
		return sum
	}

	ref := run(1)
	// 20 dead-cell runs: ordinals 0,1,2 (indices 1,3,5) give up and count
	// as failures, declaring quarantine at ordinal 3 = run index 7; the
	// remaining 17 are quarantined. The 20 good runs all complete.
	if ref.Completed != 20 || ref.Failed != 3 || ref.Quarantined != 17 ||
		ref.GaveUp != 3 || ref.Retried != 3 {
		t.Fatalf("serial reference: completed=%d failed=%d quarantined=%d gaveup=%d retried=%d, want 20/3/17/3/3",
			ref.Completed, ref.Failed, ref.Quarantined, ref.GaveUp, ref.Retried)
	}
	wantHeader := "quarantined cell=synth/dead first-fail=000001 from-run=000007\n"
	if !strings.HasPrefix(ref.Digest(), wantHeader) {
		t.Fatalf("digest header:\n%s\nwant prefix: %s", ref.Digest(), wantHeader)
	}
	if len(ref.Quarantines) != 1 || ref.Quarantines[0].Cell != "synth/dead" {
		t.Fatalf("quarantines: %+v", ref.Quarantines)
	}

	for _, shards := range []int{4, 8} {
		got := run(shards)
		if got.Digest() != ref.Digest() {
			t.Errorf("digest differs between 1 and %d shards:\n-- 1 shard --\n%s-- %d shards --\n%s",
				shards, ref.Digest(), shards, got.Digest())
		}
		if got.Completed != ref.Completed || got.Failed != ref.Failed ||
			got.Quarantined != ref.Quarantined {
			t.Errorf("shards=%d: completed/failed/quarantined = %d/%d/%d, want %d/%d/%d",
				shards, got.Completed, got.Failed, got.Quarantined,
				ref.Completed, ref.Failed, ref.Quarantined)
		}
		if len(got.Stats) != len(ref.Stats) {
			t.Fatalf("shards=%d: stat count %d, want %d", shards, len(got.Stats), len(ref.Stats))
		}
		for i, s := range got.Stats {
			if s != ref.Stats[i] {
				t.Errorf("shards=%d: stat %q: got %+v, want %+v", shards, ref.Stats[i].Name, s, ref.Stats[i])
			}
		}
	}
}

// TestQuarantineChainBreaksOnRealFailure: a verification failure (not
// retryable, not a give-up) resets the consecutive-give-up chain, so a
// cell that mixes infra timeouts with real mismatches is never
// quarantined — mismatches are the product, not noise.
func TestQuarantineChainBreaksOnRealFailure(t *testing.T) {
	good := func(ctx context.Context, r *Run) error { return nil }
	flaky := func(ctx context.Context, r *Run) error {
		if (r.Index/2)%3 == 2 {
			return errors.New("scoreboard mismatch") // real failure: breaks the chain
		}
		return &cosim.CouplingError{Class: cosim.ClassTimeout, Op: "recv",
			Err: errors.New("stalled")}
	}
	sum, err := Execute(context.Background(), Spec{
		Name:      "chain-reset",
		Seed:      6,
		Runs:      40,
		Shards:    4,
		DigestMax: 40,
		Matrix: []Cell{
			{Experiment: "synth", Run: good},
			{Experiment: "synth", Fault: "flaky", Run: flaky},
		},
		Policy: fastRetries(3),
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	// Ordinal pattern g,g,mismatch repeating: consec never reaches 3.
	if sum.Quarantined != 0 || len(sum.Quarantines) != 0 {
		t.Errorf("quarantined %d runs (%+v), want none", sum.Quarantined, sum.Quarantines)
	}
	if sum.Failed != 20 || sum.Completed != 20 {
		t.Errorf("failed=%d completed=%d, want 20/20", sum.Failed, sum.Completed)
	}
	if sum.GaveUp != 14 || sum.Retried != 14 {
		t.Errorf("gaveup=%d retried=%d, want 14/14", sum.GaveUp, sum.Retried)
	}
}

// TestQuarantineOptOut: QuarantineAfter=0 disables the board entirely;
// the dead cell just keeps failing.
func TestQuarantineOptOut(t *testing.T) {
	sum, err := Execute(context.Background(), Spec{
		Name:   "no-quarantine",
		Seed:   5,
		Runs:   40,
		Shards: 4,
		Matrix: deadInfraMatrix(),
		Policy: fastRetries(0),
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if sum.Quarantined != 0 || sum.Failed != 20 || sum.Completed != 20 {
		t.Errorf("quarantined=%d failed=%d completed=%d, want 0/20/20",
			sum.Quarantined, sum.Failed, sum.Completed)
	}
}

// TestQuarantineResumeDeterministic combines both durability mechanisms:
// a checkpointed, quarantining campaign interrupted mid-flight resumes to
// the identical digest — including the quarantine header — and counts.
func TestQuarantineResumeDeterministic(t *testing.T) {
	base := Spec{
		Name:   "quarantine-resume",
		Seed:   5,
		Runs:   40,
		Shards: 4,
		Matrix: deadInfraMatrix(),
		Policy: fastRetries(3),
	}
	ref, err := Execute(context.Background(), base)
	if err != nil {
		t.Fatalf("reference Execute: %v", err)
	}
	if ref.Quarantined == 0 {
		t.Fatal("reference quarantined nothing; test is vacuous")
	}

	ctx, cancel := context.WithCancel(context.Background())
	interrupted := base
	interrupted.Checkpoint = filepath.Join(t.TempDir(), "campaign.ckpt")
	interrupted.CheckpointEvery = 2
	interrupted.OnResult = interruptAfter(12, cancel)
	partial, err := Execute(ctx, interrupted)
	cancel()
	if err != nil {
		t.Fatalf("interrupted Execute: %v", err)
	}
	if partial.Skipped == 0 {
		t.Fatal("interruption skipped nothing; test is vacuous")
	}

	resumed := base
	resumed.Checkpoint = interrupted.Checkpoint
	res, err := Resume(context.Background(), resumed)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	assertSameSummary(t, res, ref, "quarantine-resume")
}

// TestQuarantineBoardFrontier unit-tests the board: out-of-order records
// wait at the frontier, the chain declares exactly at QuarantineAfter
// consecutive give-ups, and raced records past the point reclassify.
func TestQuarantineBoardFrontier(t *testing.T) {
	q := newQuarantine(3, 3)

	// Out-of-order: ordinal 2 arrives first and must wait.
	if cls := q.record(0, 2, 4, true, true); cls != classCounted {
		t.Fatalf("early record classified %v", cls)
	}
	if final, _ := q.finality(0, 2, false); final {
		t.Fatal("ordinal 2 final before 0 and 1 arrived")
	}
	// Ordinals 0 and 1 arrive; consuming them reaches ordinal 2 and the
	// chain of three give-ups declares quarantine from ordinal 3.
	q.record(0, 0, 0, true, true)
	if cls := q.record(0, 1, 2, true, true); cls != classCounted {
		t.Fatalf("chain-completing record classified %v", cls)
	}
	if !q.skip(0, 3) {
		t.Fatal("ordinal 3 not skipped after declaration")
	}
	if q.skip(0, 2) {
		t.Fatal("ordinal 2 (pre-declaration) wrongly skipped")
	}
	c := &q.cells[0]
	if !c.quarantined || c.e != 3 || c.firstFail != 0 {
		t.Fatalf("cell 0 board: %+v, want e=3 firstFail=0", *c)
	}
	// A raced execution past the point reclassifies as quarantined; a
	// crash/resume re-record of a consumed ordinal stays counted.
	if cls := q.record(0, 7, 14, true, true); cls != classQuarantined {
		t.Fatalf("raced record classified %v", cls)
	}
	if cls := q.record(0, 1, 2, true, true); cls != classCounted {
		t.Fatalf("resume re-record classified %v", cls)
	}
	if final, drop := q.finality(0, 9, false); !final || !drop {
		t.Fatalf("finality past point = (%v,%v), want (true,true)", final, drop)
	}

	// Cell 1: a non-give-up outcome resets the chain mid-way.
	q.record(1, 0, 1, true, true)
	q.record(1, 1, 3, true, true)
	q.record(1, 2, 5, false, true) // real failure: chain breaks
	q.record(1, 3, 7, true, true)
	q.record(1, 4, 9, true, true)
	if q.cells[1].quarantined {
		t.Fatal("cell 1 quarantined despite chain reset")
	}
	if cls := q.record(1, 5, 11, true, true); cls != classCounted {
		t.Fatalf("third consecutive give-up classified %v", cls)
	}
	if c := &q.cells[1]; !c.quarantined || c.e != 6 || c.firstFail != 7 {
		t.Fatalf("cell 1 board: %+v, want e=6 firstFail=7", *c)
	}
	// Past the declared point, finality is (true, true) with or without
	// force.
	if final, drop := q.finality(1, 8, false); !final || !drop {
		t.Fatalf("finality past cell 1's point = (%v,%v), want (true,true)", final, drop)
	}

	// Cell 2 has a frontier gap (ordinal 1 recorded, 0 missing — only a
	// cancelled campaign leaves this shape): undecided until forced, and
	// the forced classification keeps the run.
	q.record(2, 1, 5, true, true)
	if final, _ := q.finality(2, 1, false); final {
		t.Fatal("gapped ordinal reported final without force")
	}
	if final, drop := q.finality(2, 1, true); !final || drop {
		t.Fatalf("forced finality on gapped ordinal = (%v,%v), want (true,false)", final, drop)
	}
}
