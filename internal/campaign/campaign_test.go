package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"castanet/internal/cosim"
	"castanet/internal/obs"
)

// syntheticMatrix is a deterministic stand-in for the real rigs: run
// outcomes and observations derive only from the run's seed, exactly the
// contract real sources must honour. Roughly 1 in 8 runs fails, a subset
// with a typed coupling error to exercise digest labelling.
func syntheticMatrix() []Cell {
	run := func(ctx context.Context, r *Run) error {
		rng := r.RNG()
		v := rng.Uint64()
		if v%8 == 0 {
			if v%16 == 0 {
				return &cosim.CouplingError{Class: cosim.ClassTimeout, Op: "recv", Err: errors.New("synthetic")}
			}
			return fmt.Errorf("synthetic failure %d", v%4)
		}
		r.Observe("draw", float64(v%1000))
		r.Observe("index", float64(r.Index))
		return nil
	}
	return []Cell{
		{Experiment: "synth", Run: run},
		{Experiment: "synth", Fault: "noise", Run: run},
	}
}

func executeSynthetic(t *testing.T, shards int) *Summary {
	t.Helper()
	sum, err := Execute(context.Background(), Spec{
		Name:   "synthetic",
		Seed:   42,
		Runs:   200,
		Shards: shards,
		Matrix: syntheticMatrix(),
	})
	if err != nil {
		t.Fatalf("Execute(shards=%d): %v", shards, err)
	}
	return sum
}

// TestDigestDeterministicAcrossShards is the core determinism property:
// the failure digest must be byte-identical no matter how many workers
// the campaign fanned across.
func TestDigestDeterministicAcrossShards(t *testing.T) {
	ref := executeSynthetic(t, 1)
	if ref.Failed == 0 {
		t.Fatal("synthetic matrix produced no failures; test is vacuous")
	}
	if ref.Completed+ref.Failed != ref.Runs {
		t.Fatalf("run accounting: completed %d + failed %d != runs %d",
			ref.Completed, ref.Failed, ref.Runs)
	}
	for _, shards := range []int{2, 3, 8} {
		got := executeSynthetic(t, shards)
		if got.Digest() != ref.Digest() {
			t.Errorf("digest differs between 1 and %d shards:\n-- 1 shard --\n%s-- %d shards --\n%s",
				shards, ref.Digest(), shards, got.Digest())
		}
		if got.Completed != ref.Completed || got.Failed != ref.Failed {
			t.Errorf("shards=%d: completed/failed = %d/%d, want %d/%d",
				shards, got.Completed, got.Failed, ref.Completed, ref.Failed)
		}
	}
}

// TestAggregateMergeMatchesSerial checks the streaming shard-merge against
// the 1-shard serial reference. Observations are integer-valued so
// float64 sums are exact and shard order cannot perturb them.
func TestAggregateMergeMatchesSerial(t *testing.T) {
	ref := executeSynthetic(t, 1)
	got := executeSynthetic(t, 7)
	if len(ref.Stats) != len(got.Stats) {
		t.Fatalf("stat count: %d vs %d", len(got.Stats), len(ref.Stats))
	}
	for i, want := range ref.Stats {
		s := got.Stats[i]
		if s.Name != want.Name || s.Count != want.Count || s.Sum != want.Sum ||
			s.Min != want.Min || s.Max != want.Max {
			t.Errorf("stat %q: got %+v, want %+v", want.Name, s, want)
		}
	}
	// The "index" stat observes every completed run's index exactly once,
	// so its count independently cross-checks the completion tally.
	for _, s := range got.Stats {
		if s.Name == "index" && int(s.Count) != got.Completed {
			t.Errorf("index stat count %d != completed %d", s.Count, got.Completed)
		}
	}
}

// TestReplayReproducesDigestFailure re-executes a digest line's run in
// isolation and expects the identical failure.
func TestReplayReproducesDigestFailure(t *testing.T) {
	spec := Spec{Name: "synthetic", Seed: 42, Runs: 200, Shards: 4, Matrix: syntheticMatrix()}
	sum, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failures) == 0 {
		t.Fatal("no failures to replay")
	}
	for _, f := range sum.Failures[:2] {
		res, err := Replay(context.Background(), spec, f.Index)
		if err != nil {
			t.Fatalf("Replay(%d): %v", f.Index, err)
		}
		if res.Err == nil {
			t.Fatalf("replay of run %d succeeded; campaign recorded %q", f.Index, f.Label())
		}
		if got := (Failure{Index: res.Index, Seed: res.Seed, Cell: res.Cell.Name(), Err: res.Err}); got.Label() != f.Label() {
			t.Errorf("replay failure %q != campaign failure %q", got.Label(), f.Label())
		}
		if res.Seed != f.Seed {
			t.Errorf("replay seed %#x != campaign seed %#x", res.Seed, f.Seed)
		}
	}
	// A successful run replays clean too.
	if _, err := Replay(context.Background(), spec, uint64(spec.Runs)); err == nil {
		t.Error("out-of-range replay index accepted")
	}
}

// TestFailFastCancellation: the first failure must cancel every in-flight
// and pending run, tear blocked runs down through OnCancel, and leave no
// campaign goroutine behind.
func TestFailFastCancellation(t *testing.T) {
	entered := make(chan struct{}, 64)
	stopped := make(chan struct{}, 64)
	matrix := []Cell{{Experiment: "block", Run: func(ctx context.Context, r *Run) error {
		if r.Index == 0 {
			// Fail only once a peer run is demonstrably blocked, so the
			// teardown path is exercised, not raced past.
			select {
			case <-entered:
			case <-time.After(5 * time.Second):
			}
			return errors.New("first failure")
		}
		// Model a rig blocked on a coupling: only teardown releases it.
		blocked := make(chan struct{})
		release := OnCancel(ctx, func() { close(blocked) })
		entered <- struct{}{}
		select {
		case <-blocked:
		case <-time.After(5 * time.Second):
			release()
			return errors.New("cancellation never arrived")
		}
		release()
		stopped <- struct{}{}
		return errors.New("torn down")
	}}}
	sum, err := Execute(context.Background(), Spec{
		Name: "failfast", Seed: 1, Runs: 32, Shards: 4, FailFast: true, Matrix: matrix,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 1 {
		t.Errorf("failed = %d, want exactly the triggering run", sum.Failed)
	}
	if sum.Completed != 0 {
		t.Errorf("completed = %d, want 0 (every other run is cancelled)", sum.Completed)
	}
	if sum.Skipped != sum.Runs-1 {
		t.Errorf("skipped = %d, want %d", sum.Skipped, sum.Runs-1)
	}
	select {
	case <-stopped:
	default:
		t.Error("no blocked run was torn down via OnCancel")
	}
	assertNoCampaignGoroutines(t)
}

// waitUntil polls cond on a ticker until it holds or the deadline timer
// fires — no clock-comparison spinning, one blocking select per poll, so
// it stays cheap and honest under CI load.
func waitUntil(t *testing.T, timeout time.Duration, cond func() bool, report func() string) {
	t.Helper()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		if cond() {
			return
		}
		select {
		case <-tick.C:
		case <-deadline.C:
			if cond() {
				return
			}
			t.Fatalf("condition not reached within %v: %s", timeout, report())
		}
	}
}

// assertNoCampaignGoroutines scans goroutine stacks for leaked campaign
// frames, waiting briefly since exiting goroutines unwind asynchronously.
func assertNoCampaignGoroutines(t *testing.T) {
	t.Helper()
	var stacks string
	leakFrames := []string{
		"campaign.(*engine).runShard",
		"campaign.(*engine).checkpointLoop",
		"campaign.OnCancel",
		"campaign.execute.func",
	}
	waitUntil(t, 2*time.Second, func() bool {
		buf := make([]byte, 1<<20)
		stacks = string(buf[:runtime.Stack(buf, true)])
		for _, frame := range leakFrames {
			if strings.Contains(stacks, frame) {
				return false
			}
		}
		return true
	}, func() string {
		return "campaign goroutines leaked after Execute returned:\n" + stacks
	})
}

// TestContextCancelMidCampaign: external cancellation (a user's Ctrl-C)
// stops scheduling and still returns a consistent partial summary.
func TestContextCancelMidCampaign(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	matrix := []Cell{{Experiment: "slow", Run: func(ctx context.Context, r *Run) error {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return nil
		}
	}}}
	go func() {
		<-started
		cancel()
	}()
	sum, err := Execute(ctx, Spec{Name: "cancel", Seed: 1, Runs: 64, Shards: 4, Matrix: matrix})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		t.Errorf("cancelled runs were recorded as failures: %d", sum.Failed)
	}
	if sum.Completed+sum.Skipped != sum.Runs {
		t.Errorf("accounting: completed %d + skipped %d != runs %d", sum.Completed, sum.Skipped, sum.Runs)
	}
	if sum.Skipped == 0 {
		t.Error("cancellation skipped nothing; test raced to completion")
	}
	assertNoCampaignGoroutines(t)
}

// TestOnResultDeliversEveryRun: the collector sees each run exactly once
// with its SetValue payload, serially.
func TestOnResultDeliversEveryRun(t *testing.T) {
	got := make(map[uint64]int)
	matrix := []Cell{{Experiment: "val", Run: func(ctx context.Context, r *Run) error {
		r.SetValue(int(r.Index) * 3)
		return nil
	}}}
	_, err := Execute(context.Background(), Spec{
		Name: "collect", Seed: 9, Runs: 50, Shards: 5, Matrix: matrix,
		OnResult: func(res Result) { got[res.Index] = res.Value.(int) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("collector saw %d results, want 50", len(got))
	}
	for i, v := range got {
		if v != int(i)*3 {
			t.Errorf("run %d payload = %d, want %d", i, v, int(i)*3)
		}
	}
}

// TestPanicContainment: a panicking rig fails its run, not the pool.
func TestPanicContainment(t *testing.T) {
	matrix := []Cell{{Experiment: "panic", Run: func(ctx context.Context, r *Run) error {
		if r.Index == 7 {
			panic("rig exploded")
		}
		return nil
	}}}
	sum, err := Execute(context.Background(), Spec{Name: "panic", Seed: 1, Runs: 16, Shards: 4, Matrix: matrix})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 1 || sum.Completed != 15 {
		t.Fatalf("failed/completed = %d/%d, want 1/15", sum.Failed, sum.Completed)
	}
	if !strings.Contains(sum.Failures[0].Label(), "panicked") {
		t.Errorf("panic failure label = %q", sum.Failures[0].Label())
	}
}

// TestSpecValidation maps every bad parameter to ErrSpec.
func TestSpecValidation(t *testing.T) {
	good := Spec{Runs: 1, Matrix: syntheticMatrix()}
	for name, mut := range map[string]func(*Spec){
		"zero runs":       func(s *Spec) { s.Runs = 0 },
		"negative shards": func(s *Spec) { s.Shards = -1 },
		"empty matrix":    func(s *Spec) { s.Matrix = nil },
		"negative digest": func(s *Spec) { s.DigestMax = -1 },
	} {
		s := good
		mut(&s)
		if _, err := Execute(context.Background(), s); !errors.Is(err, ErrSpec) {
			t.Errorf("%s: err = %v, want ErrSpec", name, err)
		}
	}
	if _, err := Execute(context.Background(), good); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestOnCancelSemantics: stop fires exactly once on cancellation, never
// after release, and release always joins the watcher.
func TestOnCancelSemantics(t *testing.T) {
	// Released before cancellation: stop must not fire.
	ctx, cancel := context.WithCancel(context.Background())
	fired := make(chan struct{}, 2)
	release := OnCancel(ctx, func() { fired <- struct{}{} })
	release()
	cancel()
	select {
	case <-fired:
		t.Error("stop fired after release")
	case <-time.After(50 * time.Millisecond):
	}

	// Cancelled while in flight: stop fires, release still returns.
	ctx2, cancel2 := context.WithCancel(context.Background())
	release2 := OnCancel(ctx2, func() { fired <- struct{}{} })
	cancel2()
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("stop never fired on cancellation")
	}
	release2()
}

// TestCampaignObservability: per-shard counters and worker tracks land in
// the run's registry and trace.
func TestCampaignObservability(t *testing.T) {
	run := obs.NewRun(obs.DefaultTraceCap)
	sum, err := Execute(context.Background(), Spec{
		Name: "obs", Seed: 42, Runs: 40, Shards: 2, Matrix: syntheticMatrix(), Obs: run,
	})
	if err != nil {
		t.Fatal(err)
	}
	var totalRuns uint64
	for shard := 0; shard < sum.Shards; shard++ {
		totalRuns += run.Reg().Counter(obs.ShardName("campaign.runs", shard)).Value()
	}
	if int(totalRuns) != sum.Runs {
		t.Errorf("shard run counters sum to %d, want %d", totalRuns, sum.Runs)
	}
	events := run.Trace().Events()
	tracks := map[string]bool{}
	for _, ev := range events {
		tracks[ev.Track] = true
	}
	for shard := 0; shard < sum.Shards; shard++ {
		if !tracks[obs.TrackWorker(shard)] {
			t.Errorf("no trace events on %s", obs.TrackWorker(shard))
		}
	}
}
