#!/bin/sh
# explore_smoke.sh — end-to-end check for the coverage-guided scenario
# explorer, in three acts:
#
#   1. Run a pinned-seed exploration and require it to finish clean with
#      a digest.
#   2. Run the same spec checkpointed, SIGKILL it mid-flight, resume, and
#      require the resumed digest byte-identical to the reference — the
#      explorer inherits the campaign engine's durability contract.
#   3. Run the static faults campaign at the SAME run budget and seed and
#      require the explorer to cover STRICTLY more bins — the point of
#      mutation toward uncovered bins is that it beats a fixed matrix at
#      equal cost.
#
# Usage: scripts/explore_smoke.sh [path-to-castanet-binary]
# Without an argument the script builds the binary into a temp dir.
set -eu

GENERATIONS=4
POPULATION=8
SHARDS=4
SEED=11
BUDGET=$((GENERATIONS * POPULATION))

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

if [ $# -ge 1 ]; then
    bin=$1
else
    bin="$tmp/castanet"
    go build -o "$bin" ./cmd/castanet
fi

# An exploration (or campaign) exits 1 when it recorded verification
# failures; the coverage comparison below is the verdict this smoke is
# about, so 1 is tolerated here and anything else is a harness error.
run_tool() {
    log=$1
    shift
    status=0
    "$bin" "$@" >"$tmp/$log" 2>&1 || status=$?
    if [ "$status" -ne 0 ] && [ "$status" -ne 1 ]; then
        echo "explore-smoke: castanet exited $status" >&2
        cat "$tmp/$log" >&2
        exit "$status"
    fi
}

echo "explore-smoke: reference exploration ($GENERATIONS generations x $POPULATION population, $SHARDS shards, seed $SEED)"
run_tool reference.log -explore -generations "$GENERATIONS" -population "$POPULATION" \
    -shards "$SHARDS" -seed "$SEED" -digest "$tmp/reference.digest"
grep '^explore covered=' "$tmp/reference.digest"

echo "explore-smoke: checkpointed exploration, SIGKILL mid-flight"
"$bin" -explore -generations "$GENERATIONS" -population "$POPULATION" \
    -shards "$SHARDS" -seed "$SEED" \
    -checkpoint "$tmp/explore.ckpt" -checkpoint-every 2 \
    >"$tmp/killed.log" 2>&1 &
pid=$!
sleep 1.5
if kill -9 "$pid" 2>/dev/null; then
    echo "explore-smoke: killed pid $pid"
else
    # The exploration finished before the kill landed; the resume below
    # then just reproduces the result from the final state file.
    echo "explore-smoke: exploration finished before the kill (still fine)"
fi
wait "$pid" 2>/dev/null || true

echo "explore-smoke: resuming from checkpoint"
run_tool resumed.log -explore -generations "$GENERATIONS" -population "$POPULATION" \
    -shards "$SHARDS" -seed "$SEED" \
    -checkpoint "$tmp/explore.ckpt" -resume -digest "$tmp/resumed.digest"

if ! diff -u "$tmp/reference.digest" "$tmp/resumed.digest"; then
    echo "explore-smoke: FAIL — resumed digest differs from the uninterrupted reference" >&2
    exit 1
fi
echo "explore-smoke: resumed digest is byte-identical to the reference"

echo "explore-smoke: static faults campaign at the same budget ($BUDGET runs)"
run_tool baseline.log -campaign faults -runs "$BUDGET" -shards "$SHARDS" -seed "$SEED" \
    -coverage -digest "$tmp/baseline.digest"

explored=$(awk -F'[= ]' '/^explore covered=/ {print $3; exit}' "$tmp/reference.digest")
baseline=$(awk -F'[= ]' '/^cover group=/ {sum += $5} END {print sum + 0}' "$tmp/baseline.digest")
if [ -z "$explored" ]; then
    echo "explore-smoke: FAIL — no 'explore covered=' summary in the exploration digest" >&2
    exit 1
fi

echo "explore-smoke: explorer covered $explored bins, static matrix covered $baseline"
if [ "$explored" -le "$baseline" ]; then
    echo "explore-smoke: FAIL — exploration must cover strictly more bins than the static matrix at equal budget" >&2
    exit 1
fi
echo "explore-smoke: OK — coverage-guided exploration beats the static matrix ($explored > $baseline bins)"
