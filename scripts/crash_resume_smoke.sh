#!/bin/sh
# crash_resume_smoke.sh — end-to-end durability check for the campaign
# engine: run a reference campaign, run the same campaign checkpointed and
# SIGKILL it mid-flight, resume from the checkpoint, and require the
# resumed digest to be byte-identical to the uninterrupted reference.
#
# Usage: scripts/crash_resume_smoke.sh [path-to-castanet-binary]
# Without an argument the script builds the binary into a temp dir.
set -eu

CAMPAIGN="faults"
RUNS=80
SHARDS=4
SEED=11

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

if [ $# -ge 1 ]; then
    bin=$1
else
    bin="$tmp/castanet"
    go build -o "$bin" ./cmd/castanet
fi

# A campaign exits 1 when it recorded failures; that is a verification
# verdict, not a harness error, and the digest comparison below covers it.
run_campaign() {
    status=0
    "$bin" -campaign "$CAMPAIGN" -runs "$RUNS" -shards "$SHARDS" -seed "$SEED" "$@" \
        >"$tmp/out.log" 2>&1 || status=$?
    if [ "$status" -ne 0 ] && [ "$status" -ne 1 ]; then
        echo "crash-resume-smoke: campaign exited $status" >&2
        cat "$tmp/out.log" >&2
        exit "$status"
    fi
}

echo "crash-resume-smoke: reference run ($CAMPAIGN, $RUNS runs, $SHARDS shards)"
run_campaign -digest "$tmp/reference.digest"

echo "crash-resume-smoke: checkpointed run, SIGKILL mid-flight"
"$bin" -campaign "$CAMPAIGN" -runs "$RUNS" -shards "$SHARDS" -seed "$SEED" \
    -checkpoint "$tmp/campaign.ckpt" -checkpoint-every 4 \
    >"$tmp/killed.log" 2>&1 &
pid=$!
sleep 1.5
if kill -9 "$pid" 2>/dev/null; then
    echo "crash-resume-smoke: killed pid $pid"
else
    # The campaign finished before the kill landed; the resume below then
    # just reproduces the summary from the final checkpoint.
    echo "crash-resume-smoke: campaign finished before the kill (still fine)"
fi
wait "$pid" 2>/dev/null || true

if [ ! -f "$tmp/campaign.ckpt" ]; then
    # Killed before the first periodic checkpoint: resume degrades to a
    # fresh run, which must still match the reference.
    echo "crash-resume-smoke: no checkpoint written before the kill (resume runs fresh)"
fi

echo "crash-resume-smoke: resuming from checkpoint"
run_campaign -checkpoint "$tmp/campaign.ckpt" -resume -digest "$tmp/resumed.digest"

if ! diff -u "$tmp/reference.digest" "$tmp/resumed.digest"; then
    echo "crash-resume-smoke: FAIL — resumed digest differs from the uninterrupted reference" >&2
    exit 1
fi
echo "crash-resume-smoke: OK — resumed digest is byte-identical to the reference"
